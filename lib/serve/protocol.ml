(* Wire protocol of the RedoDB serving front-end.

   Framing: every message (request or response) is one frame

     <decimal payload length> '\n' <payload bytes>

   The payload is a line of space-separated tokens.  A token is either an
   atom (command word, integer, float — no spaces, never starts with
   "digits:") or a netstring-encoded string "<len>:<bytes>", which makes
   keys and values binary-safe (spaces, newlines, NULs).  Examples:

     12\nGET 3:abc             -> VAL 5:hello | NIL
     PUT 3:abc 5:hello         -> OK | OVERLOADED | ERR 8:crashing
     DEL 3:abc                 -> OK
     MGET 1:a 1:b              -> VALS V 2:v1 N
     MPUT 1:a 2:v1 1:b 2:v2    -> COMMITTED 7 3 (txid, commit epoch)
                                | UNAVAILABLE 8:crashing (retryable)
                                | INDOUBT 7 (outcome unknown until recovery)
     SCAN 5:user: 100          -> KVS 2 6:user:1 3:ada 6:user:2 5:grace
     STATS                     -> JSON <netstring of a JSON document>
     METRICS                   -> TEXT <netstring of Prometheus exposition>
     CRASH 42 0.5 0.3 0        -> OK 12.5 (recovery ms) | ERR <detail>
     PING                      -> OK

   Shard-health admin verbs (PR 9 fault isolation):

     HEALTH                    -> JSON <per-shard health document>
     FREEZE 2                  -> OK (shard 2 quarantined) | ERR <detail>
     REBUILD 2                 -> OK 3.1 (rebuild ms) | ERR <detail>
     CORRUPT 2 42 3            -> OK (3 silent bit flips, seed 42, into
                                  shard 2's durable metadata — torture
                                  hook, like CRASH)

   A data request whose shard is quarantined or rebuilding answers

     SHARD_UNAVAILABLE <s>     (retryable after the shard readmits;
                                every other shard keeps serving)

   Request envelope: any request payload may start with up to three
   optional prefixes, in this order —

     RID <n>   (n > 0)  client-assigned trace id, echoed on the response
     TTL <us>  (us > 0) deadline budget in microseconds: if the request
                        is still queued when it expires, the server sheds
                        it with the retryable TIMEOUT response instead of
                        wasting engine work
     TOK <n>   (n > 0)  client write token (PUT/DEL/MPUT): the commit
                        leaves a durable outcome record under the token,
                        so a retried token dedups server-side
                        (exactly-once) and TXSTAT can resolve its fate

   e.g.  RID 7 TTL 50000 TOK 91 MPUT 1:a 2:v1 1:b 2:v2

   Absent prefixes = 0, so old clients and servers interoperate.  Only
   RID is echoed on responses.

     TXSTAT 91                 -> TXSTAT COMMITTED 7 3 1
                                  (txid, commit epoch, outcome records)
                                | TXSTAT ABORTED | TXSTAT UNKNOWN
     (shed request)            -> TIMEOUT  (retryable: nothing executed)

   The same grammar is documented for humans in README.md ("Serving"). *)

(* Frames above this size are rejected rather than buffered: admission
   control starts at the protocol layer. *)
let max_frame = 1 lsl 24

type req =
  | Ping
  | Get of string
  | Put of string * string
  | Del of string
  | Scan of { prefix : string; max : int }
  | Mget of string list
  | Mput of (string * string) list
  | Stats
  | Metrics
  | Crash of { seed : int; evict_prob : float; torn_prob : float; bitflips : int }
  | Txstat of int  (* resolve the fate of the write carrying this token *)
  | Health  (* per-shard health states + counters, as JSON *)
  | Freeze of int  (* quarantine one shard by hand *)
  | Rebuild of int  (* rebuild a quarantined shard online *)
  | Corrupt of { shard : int; seed : int; count : int }
      (* inject silent durable-metadata rot (torture hook, like CRASH) *)

(* Request envelope: the optional RID/TTL/TOK prefixes (0 = absent). *)
type env = { rid : int; ttl_us : int; tok : int }

let no_env = { rid = 0; ttl_us = 0; tok = 0 }

type resp =
  | Ok
  | Ok_ms of float
  | Val of string
  | Nil
  | Vals of string option list
  | Kvs of (string * string) list
  | Json of string
  | Text of string
  | Overloaded
  | Committed of { txid : int; epoch : int }
  | Unavail of string
  | In_doubt of int
  | Timeout  (* shed before execution (TTL expired / overload): retryable *)
  | Shard_unavailable of int
      (* the one shard this request needed is quarantined or rebuilding;
         other shards keep serving — retryable after readmission *)
  | Txstat_committed of { txid : int; epoch : int; records : int }
  | Txstat_aborted
  | Txstat_unknown
  | Err of string

(* ---- payload encoding ---- *)

let add_str b s =
  Buffer.add_string b (string_of_int (String.length s));
  Buffer.add_char b ':';
  Buffer.add_string b s

let add_sep b = Buffer.add_char b ' '

let payload f =
  let b = Buffer.create 64 in
  f b;
  Buffer.contents b

(* "RID <n> " trace-context prefix; omitted when the id is 0. *)
let with_rid rid p = if rid > 0 then Printf.sprintf "RID %d %s" rid p else p

(* Full request envelope, fixed prefix order RID, TTL, TOK. *)
let with_env { rid; ttl_us; tok } p =
  let p = if tok > 0 then Printf.sprintf "TOK %d %s" tok p else p in
  let p = if ttl_us > 0 then Printf.sprintf "TTL %d %s" ttl_us p else p in
  with_rid rid p

let encode_req ?(rid = 0) ?(ttl_us = 0) ?(tok = 0) req =
  with_env { rid; ttl_us; tok }
  @@
  match req with
  | Ping -> "PING"
  | Get k -> payload (fun b -> Buffer.add_string b "GET "; add_str b k)
  | Put (k, v) ->
      payload (fun b ->
          Buffer.add_string b "PUT ";
          add_str b k;
          add_sep b;
          add_str b v)
  | Del k -> payload (fun b -> Buffer.add_string b "DEL "; add_str b k)
  | Scan { prefix; max } ->
      payload (fun b ->
          Buffer.add_string b "SCAN ";
          add_str b prefix;
          Buffer.add_string b (Printf.sprintf " %d" max))
  | Mget keys ->
      payload (fun b ->
          Buffer.add_string b "MGET";
          List.iter (fun k -> add_sep b; add_str b k) keys)
  | Mput kvs ->
      payload (fun b ->
          Buffer.add_string b "MPUT";
          List.iter
            (fun (k, v) ->
              add_sep b;
              add_str b k;
              add_sep b;
              add_str b v)
            kvs)
  | Stats -> "STATS"
  | Metrics -> "METRICS"
  | Crash { seed; evict_prob; torn_prob; bitflips } ->
      Printf.sprintf "CRASH %d %g %g %d" seed evict_prob torn_prob bitflips
  | Txstat tok -> Printf.sprintf "TXSTAT %d" tok
  | Health -> "HEALTH"
  | Freeze s -> Printf.sprintf "FREEZE %d" s
  | Rebuild s -> Printf.sprintf "REBUILD %d" s
  | Corrupt { shard; seed; count } ->
      Printf.sprintf "CORRUPT %d %d %d" shard seed count

let encode_resp ?(rid = 0) resp =
  with_rid rid
  @@
  match resp with
  | Ok -> "OK"
  | Ok_ms ms -> Printf.sprintf "OK %g" ms
  | Val v -> payload (fun b -> Buffer.add_string b "VAL "; add_str b v)
  | Nil -> "NIL"
  | Vals vs ->
      payload (fun b ->
          Buffer.add_string b "VALS";
          List.iter
            (function
              | Some v -> add_sep b; Buffer.add_string b "V "; add_str b v
              | None -> add_sep b; Buffer.add_char b 'N')
            vs)
  | Kvs kvs ->
      payload (fun b ->
          Buffer.add_string b (Printf.sprintf "KVS %d" (List.length kvs));
          List.iter
            (fun (k, v) ->
              add_sep b;
              add_str b k;
              add_sep b;
              add_str b v)
            kvs)
  | Json j -> payload (fun b -> Buffer.add_string b "JSON "; add_str b j)
  | Text t -> payload (fun b -> Buffer.add_string b "TEXT "; add_str b t)
  | Overloaded -> "OVERLOADED"
  | Committed { txid; epoch } -> Printf.sprintf "COMMITTED %d %d" txid epoch
  | Unavail d -> payload (fun b -> Buffer.add_string b "UNAVAILABLE "; add_str b d)
  | In_doubt txid -> Printf.sprintf "INDOUBT %d" txid
  | Timeout -> "TIMEOUT"
  | Shard_unavailable s -> Printf.sprintf "SHARD_UNAVAILABLE %d" s
  | Txstat_committed { txid; epoch; records } ->
      Printf.sprintf "TXSTAT COMMITTED %d %d %d" txid epoch records
  | Txstat_aborted -> "TXSTAT ABORTED"
  | Txstat_unknown -> "TXSTAT UNKNOWN"
  | Err msg -> payload (fun b -> Buffer.add_string b "ERR "; add_str b msg)

(* ---- payload decoding ---- *)

type token = Atom of string | Str of string

(* Tokenizer: a run of digits followed by ':' opens a netstring; anything
   else is an atom up to the next space. *)
let tokenize s =
  let n = String.length s in
  let rec digits i = if i < n && s.[i] >= '0' && s.[i] <= '9' then digits (i + 1) else i in
  let rec atom_end i = if i < n && s.[i] <> ' ' then atom_end (i + 1) else i in
  let rec go acc i =
    if i >= n then Result.Ok (List.rev acc)
    else if s.[i] = ' ' then go acc (i + 1)
    else
      let d = digits i in
      if d > i && d < n && s.[d] = ':' then begin
        let len = int_of_string (String.sub s i (d - i)) in
        if len > n - d - 1 then Error "truncated string token"
        else go (Str (String.sub s (d + 1) len) :: acc) (d + 1 + len)
      end
      else
        let e = atom_end i in
        go (Atom (String.sub s i (e - i)) :: acc) e
  in
  go [] 0

let str_tok = function Str s -> Result.Ok s | Atom a -> Error ("expected string, got " ^ a)

let int_tok = function
  | Atom a -> (
      match int_of_string_opt a with
      | Some i -> Result.Ok i
      | None -> Error ("expected int, got " ^ a))
  | Str _ -> Error "expected int, got string"

let float_tok = function
  | Atom a -> (
      match float_of_string_opt a with
      | Some f -> Result.Ok f
      | None -> Error ("expected float, got " ^ a))
  | Str _ -> Error "expected float, got string"

let ( let* ) = Result.bind

let rec strs acc = function
  | [] -> Result.Ok (List.rev acc)
  | t :: rest ->
      let* s = str_tok t in
      strs (s :: acc) rest

let rec pairs acc = function
  | [] -> Result.Ok (List.rev acc)
  | [ _ ] -> Error "odd number of strings in pair list"
  | k :: v :: rest ->
      let* k = str_tok k in
      let* v = str_tok v in
      pairs ((k, v) :: acc) rest

let split_rid = function
  | Atom "RID" :: n :: rest ->
      let* rid = int_tok n in
      if rid <= 0 then Error "RID must be positive" else Result.Ok (rid, rest)
  | toks -> Result.Ok (0, toks)

(* RID, then TTL, then TOK — each optional, each positive. *)
let split_env toks =
  let* rid, toks = split_rid toks in
  let* ttl_us, toks =
    match toks with
    | Atom "TTL" :: n :: rest ->
        let* us = int_tok n in
        if us <= 0 then Error "TTL must be positive" else Result.Ok (us, rest)
    | toks -> Result.Ok (0, toks)
  in
  let* tok, toks =
    match toks with
    | Atom "TOK" :: n :: rest ->
        let* tok = int_tok n in
        if tok <= 0 then Error "TOK must be positive" else Result.Ok (tok, rest)
    | toks -> Result.Ok (0, toks)
  in
  Result.Ok ({ rid; ttl_us; tok }, toks)

let decode_req_toks toks =
  match toks with
  | [ Atom "PING" ] -> Result.Ok Ping
  | [ Atom "GET"; k ] ->
      let* k = str_tok k in
      Result.Ok (Get k)
  | [ Atom "PUT"; k; v ] ->
      let* k = str_tok k in
      let* v = str_tok v in
      Result.Ok (Put (k, v))
  | [ Atom "DEL"; k ] ->
      let* k = str_tok k in
      Result.Ok (Del k)
  | [ Atom "SCAN"; prefix; max ] ->
      let* prefix = str_tok prefix in
      let* max = int_tok max in
      Result.Ok (Scan { prefix; max })
  | Atom "MGET" :: keys ->
      let* keys = strs [] keys in
      Result.Ok (Mget keys)
  | Atom "MPUT" :: kvs ->
      let* kvs = pairs [] kvs in
      Result.Ok (Mput kvs)
  | [ Atom "STATS" ] -> Result.Ok Stats
  | [ Atom "METRICS" ] -> Result.Ok Metrics
  | [ Atom "CRASH"; seed; evict; torn; flips ] ->
      let* seed = int_tok seed in
      let* evict_prob = float_tok evict in
      let* torn_prob = float_tok torn in
      let* bitflips = int_tok flips in
      Result.Ok (Crash { seed; evict_prob; torn_prob; bitflips })
  | [ Atom "TXSTAT"; tok ] ->
      let* tok = int_tok tok in
      if tok <= 0 then Error "TXSTAT token must be positive"
      else Result.Ok (Txstat tok)
  | [ Atom "HEALTH" ] -> Result.Ok Health
  | [ Atom "FREEZE"; s ] ->
      let* s = int_tok s in
      if s < 0 then Error "FREEZE shard must be non-negative"
      else Result.Ok (Freeze s)
  | [ Atom "REBUILD"; s ] ->
      let* s = int_tok s in
      if s < 0 then Error "REBUILD shard must be non-negative"
      else Result.Ok (Rebuild s)
  | [ Atom "CORRUPT"; shard; seed; count ] ->
      let* shard = int_tok shard in
      let* seed = int_tok seed in
      let* count = int_tok count in
      if shard < 0 then Error "CORRUPT shard must be non-negative"
      else Result.Ok (Corrupt { shard; seed; count })
  | Atom c :: _ -> Error ("unknown or malformed command " ^ c)
  | _ -> Error "empty or malformed request"

let decode_req_env p =
  let* toks = tokenize p in
  let* env, toks = split_env toks in
  let* req = decode_req_toks toks in
  Result.Ok (env, req)

let decode_req_rid p =
  Result.map (fun (env, req) -> (env.rid, req)) (decode_req_env p)

let decode_req p = Result.map snd (decode_req_rid p)

let rec vals acc = function
  | [] -> Result.Ok (List.rev acc)
  | Atom "N" :: rest -> vals (None :: acc) rest
  | Atom "V" :: v :: rest ->
      let* v = str_tok v in
      vals (Some v :: acc) rest
  | _ -> Error "malformed VALS item"

let decode_resp_toks toks =
  match toks with
  | [ Atom "OK" ] -> Result.Ok Ok
  | [ Atom "OK"; ms ] ->
      let* ms = float_tok ms in
      Result.Ok (Ok_ms ms)
  | [ Atom "VAL"; v ] ->
      let* v = str_tok v in
      Result.Ok (Val v)
  | [ Atom "NIL" ] -> Result.Ok Nil
  | Atom "VALS" :: items ->
      let* vs = vals [] items in
      Result.Ok (Vals vs)
  | Atom "KVS" :: count :: items ->
      let* n = int_tok count in
      let* kvs = pairs [] items in
      if List.length kvs <> n then Error "KVS count mismatch"
      else Result.Ok (Kvs kvs)
  | [ Atom "JSON"; j ] ->
      let* j = str_tok j in
      Result.Ok (Json j)
  | [ Atom "TEXT"; t ] ->
      let* t = str_tok t in
      Result.Ok (Text t)
  | [ Atom "OVERLOADED" ] -> Result.Ok Overloaded
  | [ Atom "COMMITTED"; txid; epoch ] ->
      let* txid = int_tok txid in
      let* epoch = int_tok epoch in
      Result.Ok (Committed { txid; epoch })
  | [ Atom "UNAVAILABLE"; d ] ->
      let* d = str_tok d in
      Result.Ok (Unavail d)
  | [ Atom "INDOUBT"; txid ] ->
      let* txid = int_tok txid in
      Result.Ok (In_doubt txid)
  | [ Atom "TIMEOUT" ] -> Result.Ok Timeout
  | [ Atom "SHARD_UNAVAILABLE"; s ] ->
      let* s = int_tok s in
      Result.Ok (Shard_unavailable s)
  | [ Atom "TXSTAT"; Atom "COMMITTED"; txid; epoch; records ] ->
      let* txid = int_tok txid in
      let* epoch = int_tok epoch in
      let* records = int_tok records in
      Result.Ok (Txstat_committed { txid; epoch; records })
  | [ Atom "TXSTAT"; Atom "ABORTED" ] -> Result.Ok Txstat_aborted
  | [ Atom "TXSTAT"; Atom "UNKNOWN" ] -> Result.Ok Txstat_unknown
  | [ Atom "ERR"; msg ] ->
      let* msg = str_tok msg in
      Result.Ok (Err msg)
  | _ -> Error "malformed response"

let decode_resp_rid p =
  let* toks = tokenize p in
  let* rid, toks = split_rid toks in
  let* resp = decode_resp_toks toks in
  Result.Ok (rid, resp)

let decode_resp p = Result.map snd (decode_resp_rid p)

(* ---- framed IO over a file descriptor ---- *)

module Io = struct
  exception Read_timeout

  (* Incremental (resumable) frame decoder: bytes are appended to a
     growable per-connection buffer as they arrive, and [next] either
     carves a complete frame out of it or answers [`Need_more] — it
     never blocks, which is what lets one reactor domain interleave
     thousands of half-received connections.  Consumed bytes are
     reclaimed by compaction (on demand, when space is needed) instead
     of per-frame allocation. *)
  module Decoder = struct
    type t = {
      mutable buf : Bytes.t;
      mutable pos : int;  (* next unconsumed byte *)
      mutable len : int;  (* filled bytes *)
    }

    let create ?(initial = 8192) () =
      { buf = Bytes.create (max 64 initial); pos = 0; len = 0 }

    let pending t = t.len - t.pos

    (* Make at least [n] writable bytes available after [len]:
       compact first (cheap, shifts only the live tail), then double. *)
    let ensure t n =
      if Bytes.length t.buf - t.len < n then begin
        let live = t.len - t.pos in
        if t.pos > 0 then begin
          Bytes.blit t.buf t.pos t.buf 0 live;
          t.pos <- 0;
          t.len <- live
        end;
        if Bytes.length t.buf - t.len < n then begin
          let cap = ref (Bytes.length t.buf) in
          while !cap - live < n do
            cap := !cap * 2
          done;
          let b = Bytes.create !cap in
          Bytes.blit t.buf 0 b 0 live;
          t.buf <- b
        end
      end

    (* Zero-copy fill: read straight into [buffer] at [write_off]
       (after [ensure]), then account the bytes with [filled]. *)
    let buffer t = t.buf
    let write_off t = t.len
    let room t = Bytes.length t.buf - t.len

    let filled t n =
      if n < 0 || n > room t then invalid_arg "Decoder.filled";
      t.len <- t.len + n

    let feed t src off n =
      ensure t n;
      Bytes.blit src off t.buf t.len n;
      t.len <- t.len + n

    let feed_string t s = feed t (Bytes.unsafe_of_string s) 0 (String.length s)

    (* Carve the next frame.  A decode error poisons the stream (the
       position past a malformed header is unknowable); callers answer
       once and close, exactly like the blocking path always did. *)
    let next t =
      let n = t.len in
      let rec digits i = if i < n && Bytes.get t.buf i >= '0' && Bytes.get t.buf i <= '9' then digits (i + 1) else i in
      let d = digits t.pos in
      if d - t.pos > 9 then `Error "frame header too long"
      else if d >= n then begin
        (* all digits so far; header still incomplete *)
        ensure t 64;
        `Need_more
      end
      else if Bytes.get t.buf d <> '\n' then
        `Error (Printf.sprintf "bad frame header byte %C" (Bytes.get t.buf d))
      else if d = t.pos then `Error "empty frame header"
      else begin
        let flen = int_of_string (Bytes.sub_string t.buf t.pos (d - t.pos)) in
        if flen > max_frame then `Error "frame too large"
        else if n - d - 1 >= flen then begin
          let p = Bytes.sub_string t.buf (d + 1) flen in
          t.pos <- d + 1 + flen;
          if t.pos = t.len then begin
            (* frame boundary: recycle the whole buffer for free *)
            t.pos <- 0;
            t.len <- 0
          end;
          `Frame p
        end
        else begin
          (* Reserve the rest of the payload up front so the reader
             can pull it in big slabs. *)
          ensure t (flen - (n - d - 1));
          `Need_more
        end
      end

    (* Why an EOF here is dirty, or [None] if the stream is at a clean
       frame boundary. *)
    let eof_reason t =
      if pending t = 0 then None
      else begin
        let n = t.len in
        let rec digits i = if i < n && Bytes.get t.buf i >= '0' && Bytes.get t.buf i <= '9' then digits (i + 1) else i in
        if digits t.pos >= n then Some "EOF inside frame header"
        else Some "EOF inside frame payload"
      end
  end

  type t = {
    fd : Unix.file_descr;
    dec : Decoder.t;
    mutable deadline : float;  (* absolute wall time; 0. = block forever *)
  }

  let of_fd fd = { fd; dec = Decoder.create (); deadline = 0. }
  let set_deadline t d = t.deadline <- d
  let decoder t = t.dec

  (* Poll until [fd] is readable or the deadline passes.  select is
     restarted on EINTR and on spurious wakeups, re-deriving the
     remaining budget from the absolute deadline each time. *)
  let rec wait_readable t =
    let remaining = t.deadline -. Unix.gettimeofday () in
    if remaining <= 0. then raise Read_timeout;
    match Unix.select [ t.fd ] [] [] remaining with
    | [], _, _ -> wait_readable t
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable t

  (* Blocking wrapper over the incremental decoder.  One frame;
     [Ok None] is a clean EOF at a frame boundary.  A signal landing
     during a blocking read (EINTR) or a spurious wakeup on a
     nonblocking fd (EAGAIN) must not kill the frame: the decoder
     state is untouched, so just retry. *)
  let read_frame t =
    let rec go () =
      match Decoder.next t.dec with
      | `Frame p -> Result.Ok (Some p)
      | `Error reason -> Error reason
      | `Need_more -> (
          if t.deadline > 0. then wait_readable t;
          match
            Unix.read t.fd (Decoder.buffer t.dec) (Decoder.write_off t.dec)
              (Decoder.room t.dec)
          with
          | 0 -> (
              match Decoder.eof_reason t.dec with
              | None -> Result.Ok None
              | Some reason -> Error reason)
          | n ->
              Decoder.filled t.dec n;
              go ()
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              go ())
    in
    go ()

  let write_all fd s =
    let b = Bytes.unsafe_of_string s in
    let rec go off len =
      if len > 0 then
        match Unix.write fd b off len with
        | n -> go (off + n) (len - n)
        | exception
            Unix.Unix_error
              ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            go off len
    in
    go 0 (String.length s)

  let write_frame t p =
    write_all t.fd (string_of_int (String.length p) ^ "\n" ^ p)
end
