(** Low-priority online scrubber over a serving {!Engine}: incrementally
    re-verifies each shard's durable sealed PTM metadata (one shard per
    {!step}, round-robin) so silent media rot is quarantined before a
    client — or the next crash recovery — meets it.  Thin driver over
    {!Engine.scrub_step}: policy and state transitions live in the
    engine; this module sequences steps, confirms Suspect verdicts
    immediately, optionally auto-rebuilds, and refreshes snapshot
    exports after clean passes so rebuild journals stay short. *)

type t

(** What one {!step} did to the shard it visited. *)
type verdict =
  | Clean of int  (** verification passed (or the shard was re-trusted) *)
  | Quarantined of int * string  (** confirmed rot: shard quarantined *)
  | Rebuilt of int  (** auto-rebuild completed; shard readmitted *)
  | Rebuild_failed of int * string  (** still quarantined; will retry *)
  | Skipped of int  (** quarantined/rebuilding and no auto-rebuild *)

(** [auto_rebuild] (default [true]): kick {!Engine.rebuild_shard} as
    soon as a shard is quarantined, and keep retrying on later visits.
    [export_every] (default 4): refresh a shard's snapshot export after
    that many consecutive clean verifications; [0] never. *)
val create : ?auto_rebuild:bool -> ?export_every:int -> Engine.t -> t

(** Verify the next shard (round-robin) and advance.  A first-strike
    [`Suspected] verdict is confirmed immediately with a second
    verification, so one [step] call can quarantine. *)
val step : t -> tid:int -> verdict

(** Completed round-robin passes over all shards. *)
val full_passes : t -> int

(** Anomalous (failed) verifications seen by this scrubber. *)
val anomalies : t -> int

(** (succeeded, failed) rebuild attempts. *)
val rebuilds : t -> int * int

(** Step until [stop ()], sleeping [pause_us] (wall clock) between
    steps — the low-priority cadence for a dedicated server domain. *)
val run : t -> tid:int -> stop:(unit -> bool) -> pause_us:float -> unit
