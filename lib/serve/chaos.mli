(** Seeded, deterministic network-fault injection for the serving
    front-end: the server (with [--chaos PLAN]) severs connections,
    truncates or corrupts response frames, delays or stalls either
    direction, and drops responses AFTER the request executed — the
    full menu a resilient client must absorb.  Faults come from
    splitmix64 streams derived per accepted connection from the plan
    seed, so a (plan, connection order, request order) triple replays
    identically; [pp_plan]/[parse_plan] round-trip a plan through the
    sweep's repro lines. *)

(** Raised when injected chaos decides the connection dies (sever, or
    truncate mid-frame).  The server treats it as the peer vanishing:
    close the socket, free the handler slot, nothing else. *)
exception Cut of string

type plan = {
  seed : int;
  sever_prob : float;  (** close the connection between requests *)
  truncate_prob : float;  (** write a strict prefix of a response frame, then cut *)
  corrupt_prob : float;  (** flip one bit of one response payload byte *)
  delay_prob : float;  (** sleep [delay_us] before a read or write *)
  delay_us : int;
  stall_prob : float;  (** sleep [stall_us] before a read (long tail) *)
  stall_us : int;
  drop_prob : float;
      (** swallow a response after the request executed: the committed
          write's ack is lost, forcing the client through its
          timeout/retry/TXSTAT path *)
}

(** Seed 1, all probabilities 0, delay 200 us, stall 20 ms. *)
val default_plan : plan

(** ["seed=1,sever=0.01,trunc=0,corrupt=0,delay=0.05,delay_us=200,stall=0,stall_us=20000,drop=0.02"]-style;
    probabilities with at most 6 significant digits round-trip exactly
    through {!parse_plan}. *)
val pp_plan : plan -> string

(** Inverse of {!pp_plan}; unknown keys and out-of-range values are
    errors, missing keys default from {!default_plan}. *)
val parse_plan : string -> (plan, string) result

(** Derive an independent sub-seed from [seed] and an index (round
    seeds from a sweep seed, connection streams from a plan seed). *)
val derive : int -> int -> int

(** One fault source per server: owns the per-connection stream counter
    and the fault tallies (also exported as [serve.chaos.*] metrics). *)
type source

val source : plan -> source
val plan : source -> plan

(** [(name, count)] pairs: severs/truncates/corrupts/delays/stalls/drops. *)
val tallies : source -> (string * int) list

val total_faults : source -> int

(** Per-connection fault stream. [tid] labels the metrics increments. *)
type conn

val conn : source -> tid:int -> conn

(** Call between requests, before blocking on the next frame: may sleep
    (delay/stall — a fiber timer under an aio reactor, a real sleep
    elsewhere) or raise {!Cut} (sever). *)
val before_read : conn -> unit

(** Response-side fault verdict for one response: what should reach the
    wire.  A pure value (tallies and counters are noted at decision
    time) so the reactor can apply it to its buffered non-blocking
    write path — append the surviving bytes, schedule the delay as a
    timer, sever after flushing the truncated prefix. *)
type verdict =
  | Deliver of string  (** the full frame bytes, unharmed or corrupted *)
  | Deliver_delayed of string * int  (** frame, delay in microseconds *)
  | Drop_response
      (** the request executed (a write may have committed) but the
          client never hears: the ack-loss fault the exactly-once
          retries must absorb *)
  | Truncate_and_cut of string  (** write this strict prefix, then sever *)

val send_verdict : conn -> string -> verdict

(** Chaos-mediated blocking response write, replacing
    [Protocol.Io.write_frame]: interprets {!send_verdict} directly —
    may drop the response entirely (returns, writes nothing), truncate
    the frame mid-write and raise {!Cut}, corrupt one payload byte, or
    delay — otherwise writes the frame intact.  [payload] is the
    unframed response line. *)
val send : conn -> Unix.file_descr -> string -> unit
