(* Writer word encoding: 0 = free; otherwise (tid + 1) lsl 1, with bit 0 set
   when the hold has been downgraded to allow readers. *)

type t = {
  writer : int Atomic.t;
  readers : int Atomic.t;
}

let create () = { writer = Atomic.make 0; readers = Atomic.make 0 }

let[@inline] encode tid = (tid + 1) lsl 1
let[@inline] downgraded w = w land 1 = 1

let shared_try_lock t ~tid =
  (* Ingress first, then check for a writer: a writer that acquired after our
     ingress will wait for us to drain, so read access is safe either way. *)
  ignore (Atomic.fetch_and_add t.readers 1);
  let w = Atomic.get t.writer in
  if w = 0 || downgraded w then true
  else begin
    ignore (Atomic.fetch_and_add t.readers (-1));
    Obs.rwlock_contended ~tid;
    false
  end

let shared_unlock t ~tid:_ = ignore (Atomic.fetch_and_add t.readers (-1))

let exclusive_try_lock t ~tid =
  if not (Atomic.compare_and_set t.writer 0 (encode tid)) then begin
    Obs.rwlock_contended ~tid;
    false
  end
  else begin
    (* Bar is up; drain in-flight readers. Each pending reader either backs
       out (saw our writer word) or holds briefly, so this loop is finite. *)
    let b = Backoff.create () in
    while Atomic.get t.readers > 0 do
      ignore (Backoff.once ~tid b)
    done;
    Obs.rwlock_acquired ~tid;
    true
  end

let exclusive_unlock t ~tid =
  let expected = encode tid in
  let w = Atomic.get t.writer in
  assert (w = expected || w = expected lor 1);
  Atomic.set t.writer 0

let downgrade t ~tid =
  let expected = encode tid in
  assert (Atomic.get t.writer = expected);
  Atomic.set t.writer (expected lor 1)

let upgrade t ~tid =
  let w = Atomic.get t.writer in
  assert (w = encode tid lor 1);
  Atomic.set t.writer (encode tid);
  let b = Backoff.create () in
  while Atomic.get t.readers > 0 do
    ignore (Backoff.once ~tid b)
  done

let downgrade_unlock t ~tid =
  let w = Atomic.get t.writer in
  assert (w = encode tid lor 1);
  Atomic.set t.writer 0

let reset t =
  Atomic.set t.writer 0;
  Atomic.set t.readers 0

let owner t =
  let w = Atomic.get t.writer in
  if w = 0 then None else Some ((w lsr 1) - 1)
