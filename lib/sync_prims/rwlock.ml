(* Writer word encoding: 0 = free; otherwise (tid + 1) lsl 1, with bit 0 set
   when the hold has been downgraded to allow readers. *)

(* Every access is a yield point under the deterministic scheduler. *)
module Atomic = Sched.Atomic

type t = {
  writer : int Atomic.t;
  readers : int Atomic.t;
}

let create () = { writer = Atomic.make 0; readers = Atomic.make 0 }

let[@inline] encode tid = (tid + 1) lsl 1
let[@inline] downgraded w = w land 1 = 1

(* How many backoff rounds a writer spends draining in-flight readers
   before backing its writer word off.  A reader parked inside its
   critical section (an OS-preempted — or scheduler-stalled — thread)
   would otherwise spin the writer forever; bounded draining turns that
   livelock into an ordinary [false] the caller already handles. *)
let drain_budget_a = Stdlib.Atomic.make 256

let set_drain_budget n =
  if n < 1 then invalid_arg "Rwlock.set_drain_budget: budget must be >= 1";
  Stdlib.Atomic.set drain_budget_a n

let drain_budget () = Stdlib.Atomic.get drain_budget_a

let shared_try_lock t ~tid =
  (* Ingress first, then check for a writer: a writer that acquired after our
     ingress will wait for us to drain, so read access is safe either way. *)
  ignore (Atomic.fetch_and_add t.readers 1);
  let w = Atomic.get t.writer in
  if w = 0 || downgraded w then true
  else begin
    ignore (Atomic.fetch_and_add t.readers (-1));
    Obs.rwlock_contended ~tid;
    false
  end

let shared_unlock t ~tid:_ = ignore (Atomic.fetch_and_add t.readers (-1))

(* Bar is assumed up; wait for in-flight readers.  Each pending reader
   either backs out (saw the writer word) or holds briefly, so this
   normally takes a handful of rounds; [false] after the budget means
   some reader is parked in its critical section. *)
let drain_readers t ~tid =
  let b = Backoff.create () in
  let budget = ref (Stdlib.Atomic.get drain_budget_a) in
  let ok = ref true in
  while !ok && Atomic.get t.readers > 0 do
    if !budget = 0 then ok := false
    else begin
      decr budget;
      ignore (Backoff.once ~tid b)
    end
  done;
  !ok

let[@inline never] owner_violation ~fn ~tid w =
  let held =
    if w = 0 then "the lock is free"
    else
      Printf.sprintf "owner is tid %d%s"
        ((w lsr 1) - 1)
        (if downgraded w then " (downgraded)" else "")
  in
  invalid_arg (Printf.sprintf "Rwlock.%s: caller tid %d but %s" fn tid held)

let exclusive_try_lock t ~tid =
  if not (Atomic.compare_and_set t.writer 0 (encode tid)) then begin
    Obs.rwlock_contended ~tid;
    false
  end
  else if drain_readers t ~tid then begin
    Obs.rwlock_acquired ~tid;
    true
  end
  else begin
    (* A reader never drained: back the bar off so readers and other
       writers can proceed, and fail like any other contended attempt. *)
    Atomic.set t.writer 0;
    Obs.rwlock_drain_aborted ~tid;
    false
  end

let exclusive_unlock t ~tid =
  let expected = encode tid in
  let w = Atomic.get t.writer in
  if not (w = expected || w = expected lor 1) then
    owner_violation ~fn:"exclusive_unlock" ~tid w;
  Atomic.set t.writer 0

let downgrade t ~tid =
  let expected = encode tid in
  let w = Atomic.get t.writer in
  if w <> expected then owner_violation ~fn:"downgrade" ~tid w;
  Atomic.set t.writer (expected lor 1)

let try_upgrade t ~tid =
  let w = Atomic.get t.writer in
  if w <> encode tid lor 1 then owner_violation ~fn:"try_upgrade" ~tid w;
  Atomic.set t.writer (encode tid);
  if drain_readers t ~tid then true
  else begin
    (* Re-admit readers: the caller keeps its downgraded hold and must
       choose another way to make progress (e.g. abandon the replica). *)
    Atomic.set t.writer (encode tid lor 1);
    Obs.rwlock_drain_aborted ~tid;
    false
  end

let upgrade t ~tid =
  let w = Atomic.get t.writer in
  if w <> encode tid lor 1 then owner_violation ~fn:"upgrade" ~tid w;
  Atomic.set t.writer (encode tid);
  let b = Backoff.create () in
  while Atomic.get t.readers > 0 do
    ignore (Backoff.once ~tid b)
  done

let downgrade_unlock t ~tid =
  let w = Atomic.get t.writer in
  if w <> encode tid lor 1 then owner_violation ~fn:"downgrade_unlock" ~tid w;
  Atomic.set t.writer 0

let reset t =
  Atomic.set t.writer 0;
  Atomic.set t.readers 0

let owner t =
  let w = Atomic.get t.writer in
  if w = 0 then None else Some ((w lsr 1) - 1)
