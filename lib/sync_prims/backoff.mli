(** Bounded exponential backoff (Anderson-style) for spin loops.

    On the single-core hosts this reproduction targets, pure [cpu_relax]
    spinning can burn a whole scheduler quantum while the lock holder is
    descheduled, so past a spin threshold the backoff yields to the OS. *)

type t

(** [create ()] returns a fresh backoff state starting at the minimum delay.
    [max_spins] bounds the busy-wait iterations of a single [once] before
    yielding to the OS scheduler. *)
val create : ?max_spins:int -> unit -> t

(** Wait once and increase the next delay (capped). Returns the number of
    spin iterations performed, so callers can account waiting time.
    [tid] only attributes the yield to a thread in the observability
    counters (defaults to 0). *)
val once : ?tid:int -> t -> int

(** Reset the delay to the minimum. *)
val reset : t -> unit

(** Yield the processor to the OS scheduler immediately. *)
val yield : unit -> unit
