type t = {
  mutable spins : int;
  max_spins : int;
}

let create ?(max_spins = 1024) () = { spins = 4; max_spins }

let yield () =
  (* Under the deterministic scheduler, yielding means suspending the
     fiber; under Domains, Unix.sleepf 0.0 releases the processor
     without a measurable delay (Domain.cpu_relax alone never lets the
     holder's domain run on 1 core). *)
  if Sched.active () then Sched.yield () else Unix.sleepf 0.0

let once ?(tid = 0) t =
  let n = t.spins in
  if Sched.active () then
    (* Spinning burns host CPU without advancing simulated time; one
       yield point per backoff round keeps the spins-growth contract
       while handing control back to the scheduler. *)
    Sched.yield ()
  else if n >= t.max_spins then begin
    Obs.backoff_yielded ~tid;
    yield ()
  end
  else
    for _ = 1 to n do
      Domain.cpu_relax ()
    done;
  if t.spins < t.max_spins then t.spins <- t.spins * 2;
  n

let reset t = t.spins <- 4
