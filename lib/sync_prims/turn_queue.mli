(** Wait-free multi-producer queue of operations (CX's mutation queue).

    Modelled on the turn queue of Ramalhete & Correia (PPoPP '17 poster):
    enqueuers publish their node in a per-thread announce slot and all
    enqueuers help link announced nodes in round-robin ("turn") order, so an
    announced node is linked within [n] link steps — bounded wait-free.

    Nodes are never dequeued: consumers (the CX Combined instances) keep
    per-replica cursors into the list and advance them.  Reclamation is the
    garbage collector's job; the CX construction bounds the live chain length
    by invalidating replicas whose cursor falls behind a window (see
    DESIGN.md), which mirrors the original's hazard-pointer scheme. *)

type 'a node

val payload : 'a node -> 'a

(** Position of the node in the queue (sentinel = 0); assigned at link time
    and monotonically increasing along the list. *)
val ticket : 'a node -> int

(** Successor in the queue, if linked yet. *)
val next : 'a node -> 'a node option

type 'a t

(** [create ~num_threads dummy] builds a queue whose sentinel carries
    [dummy]; thread ids must be in [0 .. num_threads - 1]. *)
val create : num_threads:int -> 'a -> 'a t

(** The sentinel node (ticket 0). Every consumer cursor starts here. *)
val sentinel : 'a t -> 'a node

(** Last linked node currently known. *)
val tail : 'a t -> 'a node

(** [announced t ~tid] is [tid]'s announce slot: the node it published with
    {!enqueue} and has not yet observed linked.  Progress probes use this to
    detect an announced-but-unlinked operation of a stalled thread (helpers
    will still link it, in turn order). *)
val announced : 'a t -> tid:int -> 'a node option

(** [enqueue t ~tid payload] appends a new node and returns it, helping other
    announced enqueuers along the way; returns once the node is linked (its
    ticket is then valid). *)
val enqueue : 'a t -> tid:int -> 'a -> 'a node
