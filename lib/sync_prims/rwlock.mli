(** Strong try reader-writer lock (Correia & Ramalhete, PPoPP '18).

    The lock exposes only {e try} acquisitions that complete in a bounded
    number of steps, plus a writer-to-reader {e downgrade}; these are the
    properties CX and Redo-PTM need for wait-free progress:

    - [shared_try_lock] fails only if a (non-downgraded) writer holds the
      lock — no spurious failures;
    - [exclusive_try_lock] fails only if another writer holds the lock; on
      success it waits for in-flight readers to drain, which takes finitely
      many steps because new readers are barred;
    - [downgrade] lets readers in again while still excluding writers.

    Implementation: a reader ingress counter ([Atomic]) plus a writer word
    holding the owner (and a downgrade bit). *)

type t

val create : unit -> t

(** [shared_try_lock t ~tid] attempts read access. *)
val shared_try_lock : t -> tid:int -> bool

val shared_unlock : t -> tid:int -> unit

(** [exclusive_try_lock t ~tid] attempts write access; on success all reader
    activity has drained before it returns [true].  Draining is bounded (see
    {!set_drain_budget}): if an in-flight reader is parked inside its
    critical section — a preempted or stalled thread — the writer word is
    backed off and the attempt fails rather than spinning forever. *)
val exclusive_try_lock : t -> tid:int -> bool

(** All owner-checked operations ([exclusive_unlock], [downgrade],
    [upgrade], [try_upgrade], [downgrade_unlock]) raise [Invalid_argument]
    with an owner/tid diagnostic when the caller does not hold the lock in
    the required mode — always on, unlike [assert]. *)

val exclusive_unlock : t -> tid:int -> unit

(** [downgrade t ~tid] turns the caller's exclusive hold into a state where
    readers may enter but writers are still excluded.  Must be called by the
    current exclusive owner. *)
val downgrade : t -> tid:int -> unit

(** Release after [downgrade]. *)
val downgrade_unlock : t -> tid:int -> unit

(** [upgrade t ~tid] re-acquires exclusivity after a [downgrade]: bars new
    readers and drains the in-flight ones — {e unboundedly}.  Must be called
    by the current (downgraded) owner.  Prefer {!try_upgrade} wherever a
    stalled reader must not be able to block the caller. *)
val upgrade : t -> tid:int -> unit

(** [try_upgrade t ~tid] is {!upgrade} with the bounded drain of
    {!exclusive_try_lock}: on budget exhaustion the downgraded hold is
    restored (readers re-admitted) and the call returns [false]. *)
val try_upgrade : t -> tid:int -> bool

(** {2 Drain budget} *)

(** [set_drain_budget n] caps the number of backoff rounds a writer spends
    draining in-flight readers (global; default 256).  Aborted drains are
    counted on the [sync.rwlock.drain_aborted] metric. *)
val set_drain_budget : int -> unit

val drain_budget : unit -> int

(** Current exclusive owner's [tid], if any (downgraded owners included);
    for debugging and assertions. *)
val owner : t -> int option

(** [reset t] forces the lock back to its freshly-created state — writer word
    cleared {e and} reader ingress count zeroed.  Only meaningful for crash
    recovery, where every simulated thread is dead and leftover reader counts
    or owner words are stale by definition.  Never call it on a live lock. *)
val reset : t -> unit
