(* Every access is a yield point under the deterministic scheduler. *)
module Atomic = Sched.Atomic

type 'a node = {
  payload : 'a;
  ticket_a : int Atomic.t; (* -1 until linked *)
  enqueued : bool Atomic.t;
  next_a : 'a node option Atomic.t;
}

let payload n = n.payload
let ticket n = Atomic.get n.ticket_a
let next n = Atomic.get n.next_a

type 'a t = {
  sentinel : 'a node;
  tail_a : 'a node Atomic.t;
  announce : 'a node option Atomic.t array;
  n : int;
}

let make_node payload =
  {
    payload;
    ticket_a = Atomic.make (-1);
    enqueued = Atomic.make false;
    next_a = Atomic.make None;
  }

let create ~num_threads dummy =
  let sentinel = make_node dummy in
  Atomic.set sentinel.ticket_a 0;
  Atomic.set sentinel.enqueued true;
  {
    sentinel;
    tail_a = Atomic.make sentinel;
    announce = Array.init num_threads (fun _ -> Atomic.make None);
    n = num_threads;
  }

let sentinel t = t.sentinel
let tail t = Atomic.get t.tail_a
let announced t ~tid = Atomic.get t.announce.(tid)

(* Completing a link is split KP-style: assign the ticket, mark the node
   enqueued, and only then swing the tail.  Helpers that find the tail's
   successor already linked finish this sequence idempotently, so a candidate
   observed with [enqueued = true] after a fresh tail read can never be
   linked a second time. *)
let finish_link t ltail node =
  let tkt = Atomic.get ltail.ticket_a + 1 in
  ignore (Atomic.compare_and_set node.ticket_a (-1) tkt);
  Atomic.set node.enqueued true;
  ignore (Atomic.compare_and_set t.tail_a ltail node)

(* Pick the announced, not-yet-enqueued node whose turn is next; fall back to
   [mine].  Scanning starts after the current tail's ticket so every thread's
   turn comes up within [n] successful links. *)
let candidate t ltail mine =
  let start = (Atomic.get ltail.ticket_a + 1) mod t.n in
  let rec scan k =
    if k = t.n then mine
    else
      let slot = (start + k) mod t.n in
      match Atomic.get t.announce.(slot) with
      | Some node when not (Atomic.get node.enqueued) -> node
      | Some _ | None -> scan (k + 1)
  in
  scan 0

let enqueue t ~tid payload =
  let node = make_node payload in
  Atomic.set t.announce.(tid) (Some node);
  while not (Atomic.get node.enqueued) do
    let ltail = Atomic.get t.tail_a in
    match Atomic.get ltail.next_a with
    | Some nx ->
        (* Someone linked a node but has not finished; help. *)
        if nx != node then Obs.helped ~tid;
        finish_link t ltail nx
    | None ->
        let cand = candidate t ltail node in
        if not (Atomic.get cand.enqueued) then
          if Atomic.compare_and_set ltail.next_a None (Some cand) then begin
            if cand != node then Obs.helped ~tid;
            finish_link t ltail cand
          end
  done;
  Atomic.set t.announce.(tid) None;
  node
