(** Unified observability: JSON values, a metrics registry (per-thread
    counters + log-bucketed latency histograms), and an event-trace
    layer exporting Chrome trace-event JSON.

    Both the metrics and the trace layer sit behind global enables;
    when disabled, every recording entry point is a single branch on a
    [bool ref] — safe to leave in the hottest paths. *)

val max_tids : int
(** Per-thread state is kept for thread ids [0 .. max_tids-1]; larger
    tids are folded in with [land (max_tids - 1)]. *)

(** Minimal JSON: printer and parser, so benches can emit
    machine-readable results without external dependencies. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val to_channel : out_channel -> t -> unit

  val member : string -> t -> t option
  (** [member k (Obj kvs)] is the value bound to [k], if any. *)

  val parse : string -> (t, string) result
  (** Strict parser: the whole input must be one JSON value. *)

  val parse_file : string -> (t, string) result
end

module Metrics : sig
  val enable : bool -> unit
  val is_on : unit -> bool

  (** {2 Counters} — per-thread cells (padded against false sharing),
      summed on read. [incr]/[add] are no-ops unless [enable true]. *)

  type counter

  val counter : string -> counter
  (** Registered, idempotent: the same name returns the same counter. *)

  val incr : counter -> tid:int -> unit
  val add : counter -> tid:int -> int -> unit
  val counter_value : counter -> int
  val counter_per_thread : counter -> int array
  val counter_name : counter -> string
  val reset_counter : counter -> unit

  (** {2 Histograms} — log-bucketed (16 linear sub-buckets per power of
      two, ~3% worst-case quantization). Values are non-negative
      integers, nanoseconds by convention. Recording is NOT gated on
      the global enable: the owner decides when to measure. *)

  type histogram

  val histogram : string -> histogram
  (** Registered, idempotent. *)

  val make_histogram : ?name:string -> unit -> histogram
  (** Unregistered histogram for a caller's private use. *)

  val record_ns : histogram -> tid:int -> int -> unit

  val record_span_s : histogram -> tid:int -> float -> unit
  (** Record a duration given in seconds. *)

  type hsnap = {
    count : int;
    mean_ns : float;
    max_ns : int;
    p50 : int;
    p90 : int;
    p99 : int;
    p999 : int;
  }

  val hsnap_zero : hsnap
  val hsnapshot : histogram -> hsnap
  val hsnap_json : hsnap -> Json.t
  val histogram_name : histogram -> string
  val reset_histogram : histogram -> unit

  (** {2 Registry} *)

  val all_counters : unit -> counter list
  val all_histograms : unit -> histogram list
  val reset_all : unit -> unit

  val to_json : unit -> Json.t
  (** [{"counters": {...}, "histograms": {...}}]; counters include
      per-thread values, histograms their percentile snapshots. *)

  val dump : Format.formatter -> unit
  (** Human-readable listing of all non-zero instruments. *)
end

module Window : sig
  (** Sliding-window histograms: [epochs] rotating epoch slots of
      [epoch_s] seconds each, merged on read — so "p99 over the last
      10 s" is cheap, and the record path is allocation-free (bucket
      increments into preallocated slots).  Recording is NOT gated on
      [Metrics.enable]: windows are the live telemetry plane a running
      server exposes through STATS/METRICS.  Concurrent recorders may
      lose individual increments (plain int cells, no locking) — fine
      for telemetry percentiles, not for exact accounting. *)

  type t

  val create : ?epochs:int -> ?epoch_s:float -> string -> t
  (** Registered, idempotent by name: the same name returns the same
      window (the [epochs]/[epoch_s] of the first creation win).
      Defaults: 10 epochs of 1 s — a ~10 s sliding window. *)

  val name : t -> string

  val window_s : t -> float
  (** Total window span, [epochs * epoch_s] seconds. *)

  val record_ns : t -> ?now:float -> int -> unit
  (** Record a non-negative value (nanoseconds by convention) at time
      [now] (seconds; defaults to [Unix.gettimeofday ()]).  Epochs the
      value's timestamp has moved past are recycled in place.  [now] is
      exposed so tests (and the deterministic scheduler) can drive
      rotation explicitly. *)

  val record_span_s : t -> ?now:float -> float -> unit
  (** Record a duration given in seconds. *)

  val snapshot : ?now:float -> t -> Metrics.hsnap
  (** Merge the live epochs (values recorded within the last
      [window_s] seconds as of [now]) into one percentile snapshot. *)

  val reset : t -> unit

  val all : unit -> t list
  val find : string -> t option

  val to_json : ?now:float -> unit -> Json.t
  (** [{"<name>": {"window_s": ..., "count": ..., "p99_ns": ...}, ...}]
      for every registered window — the "windows" member of the serving
      STATS document. *)
end

module Trace : sig
  (** Typed events recorded into fixed-size per-thread ring buffers;
      when a ring wraps, the oldest events are overwritten. *)

  type kind =
    | Tx  (** update transaction (span) *)
    | Tx_abort  (** aborted/retried transaction (instant) *)
    | Combine  (** combining round executing announced ops (span) *)
    | Helping  (** executed another thread's operation (instant) *)
    | Copy  (** replica copy (span, via Breakdown) *)
    | Apply  (** log/queue replay onto a replica (span) *)
    | Flush  (** pwb+fence batch of a replica or log (span) *)
    | Lambda  (** user transaction body (span) *)
    | Sleep  (** backoff/waiting (span) *)
    | Fence  (** pfence/psync; arg = staged lines drained (instant) *)
    | Rwlock_acquire  (** exclusive lock acquired (instant) *)
    | Rwlock_contend  (** lock attempt failed (instant) *)
    | Recovery  (** post-crash recovery (span) *)
    | Checkpoint  (** ONLL checkpoint (span) *)
    | Crash  (** simulated crash / injected crash point (instant) *)
    | Db_op  (** RedoDB API call (span) *)
    | Serve_op  (** serving-engine request (span; arg = opcode) *)
    | Batch  (** group-commit batch transaction (span; arg = batch size) *)
    | Commit  (** cross-shard two-phase commit (span; arg = txid) *)
    | Ingress  (** wire-frame parse of one request (span) *)
    | Queue_wait  (** request sat in a batcher queue awaiting drain (span) *)
    | Linger  (** leader's batch-fill window (span; arg = batch size) *)
    | Drain  (** leader drained the queue into a batch (span; arg = size) *)
    | Prepare  (** 2PC prepare on one shard (span; arg = shard) *)
    | Decide  (** 2PC decision-record commit (span; arg = txid) *)
    | Ack  (** response frame write (span) *)

  val kind_name : kind -> string

  val enable : ?capacity:int -> unit -> unit
  (** Clear all rings and start recording. [capacity] is per-thread
      (default 16384 events). *)

  val disable : unit -> unit
  val is_on : unit -> bool
  val clear : unit -> unit

  val instant : ?arg:int -> ?rid:int -> kind -> tid:int -> unit
  (** [rid] is the request id of the wire request this event belongs to
      (0 = none).  Every event of one request carries the same [rid], so
      a request's span tree can be followed across threads and layers in
      the exported trace (the ["rid"] member of each event's args). *)

  val complete : ?arg:int -> ?rid:int -> kind -> tid:int -> t0:float -> unit
  (** Record a span that started at [t0] (Unix.gettimeofday, seconds)
      and ends now. *)

  val span : ?arg:int -> ?rid:int -> kind -> tid:int -> (unit -> 'a) -> 'a
  (** Run a closure as a span. When tracing is off this is just the
      call. The span is recorded even if the closure raises. *)

  val recorded : unit -> int
  (** Total events recorded since [enable] (including overwritten). *)

  val dropped : unit -> int
  (** Events lost to ring wraparound. *)

  val export : unit -> Json.t
  (** Chrome trace-event JSON: ["X"] (complete) and ["i"] (instant)
      events with µs timestamps relative to [enable]; load the file in
      Perfetto (ui.perfetto.dev) or chrome://tracing. *)

  val write_file : string -> unit
end

val is_active : unit -> bool
(** True if either metrics or tracing is enabled. *)

val prometheus : ?extra:(string * float) list -> unit -> string
(** Prometheus text exposition (version 0.0.4) of the whole registry:
    every counter as a [counter], every non-empty histogram and every
    window as a [summary] (quantile samples plus [_count]/[_sum];
    windows additionally carry a [{window="<seconds>"}] label on their
    quantile samples).  Registry names are sanitized to the Prometheus
    grammar ([.] and other invalid characters become [_]).  [extra]
    appends caller gauges; their names are emitted verbatim and may
    embed a [{label="value"}] suffix. *)

(** {2 Cross-PTM instrumentation helpers} — each is a branch-only
    no-op when the relevant layer is disabled. *)

val tx_committed : tid:int -> t0:float -> unit
(** Count a committed update transaction that began at [t0]
    (Unix.gettimeofday, seconds): commit counter + latency histogram +
    [Tx] trace span. *)

val tx_aborted : tid:int -> unit
val helped : tid:int -> unit
val replica_copied : tid:int -> unit
val rwlock_acquired : tid:int -> unit
val rwlock_contended : tid:int -> unit
val backoff_yielded : tid:int -> unit

val rwlock_drain_aborted : tid:int -> unit
(** A writer gave up draining in-flight readers within the configured
    budget and backed its writer word off ([sync.rwlock.drain_aborted]). *)

val progress_op_completed :
  tid:int -> helped:bool -> stalled_announcer:bool -> gap_steps:int -> unit
(** Scheduler-harness progress record for one completed operation:
    [helped] counts executions by a thread other than the announcer
    ([ptm.progress.helped_completion]); [stalled_announcer] counts
    operations finished while their announcer was stalled or killed
    ([ptm.progress.stalled_op_completed]); [gap_steps] (ignored when
    negative) feeds the announce-to-completion scheduler-step histogram
    ([ptm.progress.announce_to_done_steps] — "ns" fields are steps
    there). *)

(** {2 Media-fault and hardened-recovery instruments} — counted on tid 0,
    since fault injection and recovery run on a quiesced region. *)

val torn_line_persisted : unit -> unit
(** A dirty line was persisted only partially ([pmem.fault.torn_line]). *)

val bit_flip_injected : unit -> unit
(** A durable word had one bit flipped ([pmem.fault.bit_flip]). *)

val recovery_fell_back : unit -> unit
(** Recovery abandoned corrupt primary metadata for a validated fallback
    replica ([ptm.recovery.fallback]). *)

val recovery_truncated_log : unit -> unit
(** Recovery rolled a log back to its last intact entry
    ([ptm.recovery.log_truncated]). *)

val recovery_unrecoverable : unit -> unit
(** Recovery found no consistent durable image and raised
    ([ptm.recovery.unrecoverable]). *)
