(* Unified observability layer.

   Three pieces, all dependency-free (unix only) so every other library
   can sit on top of it:

   - [Json]: a tiny JSON value type with a printer and a parser, so
     benches can emit machine-readable results and tools can validate
     them without external dependencies.
   - [Metrics]: a global registry of named per-thread counters and
     log-bucketed latency histograms (p50/p90/p99/p999/max).
   - [Trace]: fixed-size per-thread ring buffers of typed events with
     an exporter to Chrome trace-event JSON (loadable in Perfetto or
     chrome://tracing).

   Both layers are behind global enables; the disabled path of every
   recording function is a single branch on a bool ref. *)

let max_tids = 128
let tid_mask = max_tids - 1

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape_to b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  (* Non-finite floats have no JSON encoding; emit null rather than an
     unparsable token. *)
  let float_str f =
    if not (Float.is_finite f) then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%.9g" f

  let rec to_buffer b = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_str f)
    | String s -> escape_to b s
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            to_buffer b x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            escape_to b k;
            Buffer.add_char b ':';
            to_buffer b v)
          kvs;
        Buffer.add_char b '}'

  let to_string j =
    let b = Buffer.create 1024 in
    to_buffer b j;
    Buffer.contents b

  let to_channel oc j =
    let b = Buffer.create 65536 in
    to_buffer b j;
    Buffer.output_buffer oc b

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None

  exception Parse_error of string

  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %C" c)
    in
    let lit word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail "invalid literal"
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        incr pos;
        if c = '"' then Buffer.contents b
        else if c = '\\' then begin
          if !pos >= n then fail "truncated escape";
          let e = s.[!pos] in
          incr pos;
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let h = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                match int_of_string_opt ("0x" ^ h) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              (* BMP code points re-encoded as UTF-8. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
          | _ -> fail "bad escape");
          go ()
        end
        else begin
          Buffer.add_char b c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num s.[!pos] do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elems (v :: acc)
              | Some ']' ->
                  incr pos;
                  List (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elems []
      | Some '"' -> String (parse_string ())
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected character %C" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error m -> Error m

  let parse_file path =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> parse s
    | exception Sys_error m -> Error m
end

module Metrics = struct
  let enabled = ref false
  let enable b = enabled := b
  let is_on () = !enabled

  (* Per-tid cells are strided so concurrent writers from different
     domains land on different cache lines. *)
  let stride = 16

  type counter = { cname : string; cells : int array }

  let add c ~tid n =
    if !enabled then begin
      let i = (tid land tid_mask) * stride in
      c.cells.(i) <- c.cells.(i) + n
    end

  let incr c ~tid = add c ~tid 1
  let counter_value c = Array.fold_left ( + ) 0 c.cells
  let counter_per_thread c = Array.init max_tids (fun t -> c.cells.(t * stride))
  let reset_counter c = Array.fill c.cells 0 (Array.length c.cells) 0

  (* ---- log-bucketed histograms ----
     Values are non-negative integers (nanoseconds by convention).
     Major bucket = floor(log2 v) with [sub] linear sub-buckets per
     major, so the worst-case relative quantization error is ~1/sub. *)

  let sub_bits = 4
  let sub = 1 lsl sub_bits
  let n_buckets = (62 - sub_bits + 2) * sub

  let bucket_of v =
    if v < sub then if v < 0 then 0 else v
    else begin
      let major = ref 0 and x = ref v in
      while !x > 1 do
        major := !major + 1;
        x := !x lsr 1
      done;
      let m = !major in
      ((m - sub_bits + 1) * sub) + ((v lsr (m - sub_bits)) land (sub - 1))
    end

  (* Representative value: midpoint of the bucket's range. *)
  let bucket_value i =
    if i < sub then i
    else begin
      let m = (i lsr sub_bits) + sub_bits - 1 in
      let s = i land (sub - 1) in
      let width = 1 lsl (m - sub_bits) in
      (1 lsl m) + (s * width) + (width / 2)
    end

  type histogram = {
    hname : string;
    rows : int array array; (* per tid, allocated on first record *)
    hcount : int array; (* per tid, strided *)
    hsum : float array;
    hmax : int array;
  }

  let make_histogram ?(name = "") () =
    {
      hname = name;
      rows = Array.make max_tids [||];
      hcount = Array.make (max_tids * stride) 0;
      hsum = Array.make (max_tids * stride) 0.;
      hmax = Array.make (max_tids * stride) 0;
    }

  (* Recording is NOT gated on [enabled]: callers that own a histogram
     (Breakdown, bench harness) decide when to measure. *)
  let record_ns h ~tid v =
    let tid = tid land tid_mask in
    let v = if v < 0 then 0 else v in
    let row =
      let r = h.rows.(tid) in
      if Array.length r > 0 then r
      else begin
        let r = Array.make n_buckets 0 in
        h.rows.(tid) <- r;
        r
      end
    in
    let b = bucket_of v in
    row.(b) <- row.(b) + 1;
    let i = tid * stride in
    h.hcount.(i) <- h.hcount.(i) + 1;
    h.hsum.(i) <- h.hsum.(i) +. float_of_int v;
    if v > h.hmax.(i) then h.hmax.(i) <- v

  let record_span_s h ~tid dt = record_ns h ~tid (int_of_float (dt *. 1e9))

  type hsnap = {
    count : int;
    mean_ns : float;
    max_ns : int;
    p50 : int;
    p90 : int;
    p99 : int;
    p999 : int;
  }

  let hsnap_zero =
    { count = 0; mean_ns = 0.; max_ns = 0; p50 = 0; p90 = 0; p99 = 0; p999 = 0 }

  (* Percentile snapshot of one merged bucket array — shared between the
     registry histograms and the sliding windows. *)
  let snap_of_merged merged ~count ~sum ~max_v =
    if count = 0 then hsnap_zero
    else begin
      let percentile q =
        let rank =
          let r = int_of_float (ceil (q *. float_of_int count)) in
          if r < 1 then 1 else r
        in
        let acc = ref 0 and res = ref max_v in
        (try
           for i = 0 to n_buckets - 1 do
             acc := !acc + merged.(i);
             if !acc >= rank then begin
               res := bucket_value i;
               raise Exit
             end
           done
         with Exit -> ());
        if !res > max_v then max_v else !res
      in
      {
        count;
        mean_ns = sum /. float_of_int count;
        max_ns = max_v;
        p50 = percentile 0.50;
        p90 = percentile 0.90;
        p99 = percentile 0.99;
        p999 = percentile 0.999;
      }
    end

  let hsnapshot h =
    let count = ref 0 and sum = ref 0. and max_v = ref 0 in
    for t = 0 to max_tids - 1 do
      let i = t * stride in
      count := !count + h.hcount.(i);
      sum := !sum +. h.hsum.(i);
      if h.hmax.(i) > !max_v then max_v := h.hmax.(i)
    done;
    if !count = 0 then hsnap_zero
    else begin
      let merged = Array.make n_buckets 0 in
      Array.iter
        (fun row ->
          if Array.length row > 0 then
            Array.iteri (fun i c -> merged.(i) <- merged.(i) + c) row)
        h.rows;
      snap_of_merged merged ~count:!count ~sum:!sum ~max_v:!max_v
    end

  let reset_histogram h =
    Array.iter
      (fun row -> if Array.length row > 0 then Array.fill row 0 (Array.length row) 0)
      h.rows;
    Array.fill h.hcount 0 (Array.length h.hcount) 0;
    Array.fill h.hsum 0 (Array.length h.hsum) 0.;
    Array.fill h.hmax 0 (Array.length h.hmax) 0

  let hsnap_json (s : hsnap) : Json.t =
    Json.Obj
      [
        ("count", Json.Int s.count);
        ("mean_ns", Json.Float s.mean_ns);
        ("max_ns", Json.Int s.max_ns);
        ("p50_ns", Json.Int s.p50);
        ("p90_ns", Json.Int s.p90);
        ("p99_ns", Json.Int s.p99);
        ("p999_ns", Json.Int s.p999);
      ]

  (* ---- registry ---- *)

  let reg_mutex = Mutex.create ()
  let reg_counters : (string, counter) Hashtbl.t = Hashtbl.create 32
  let reg_histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32
  let counter_order : counter list ref = ref []
  let histogram_order : histogram list ref = ref []

  let counter name =
    Mutex.protect reg_mutex (fun () ->
        match Hashtbl.find_opt reg_counters name with
        | Some c -> c
        | None ->
            let c =
              { cname = name; cells = Array.make (max_tids * stride) 0 }
            in
            Hashtbl.add reg_counters name c;
            counter_order := c :: !counter_order;
            c)

  let histogram name =
    Mutex.protect reg_mutex (fun () ->
        match Hashtbl.find_opt reg_histograms name with
        | Some h -> h
        | None ->
            let h = make_histogram ~name () in
            Hashtbl.add reg_histograms name h;
            histogram_order := h :: !histogram_order;
            h)

  let counter_name c = c.cname
  let histogram_name h = h.hname
  let all_counters () = List.rev !counter_order
  let all_histograms () = List.rev !histogram_order

  let reset_all () =
    List.iter reset_counter (all_counters ());
    List.iter reset_histogram (all_histograms ())

  let to_json () : Json.t =
    let counter_json c =
      let per = counter_per_thread c in
      let nz = ref [] in
      Array.iteri
        (fun t v -> if v <> 0 then nz := (string_of_int t, Json.Int v) :: !nz)
        per;
      Json.Obj
        [
          ("total", Json.Int (counter_value c));
          ("per_thread", Json.Obj (List.rev !nz));
        ]
    in
    Json.Obj
      [
        ( "counters",
          Json.Obj
            (List.map (fun c -> (c.cname, counter_json c)) (all_counters ())) );
        ( "histograms",
          Json.Obj
            (List.filter_map
               (fun h ->
                 let s = hsnapshot h in
                 if s.count = 0 then None else Some (h.hname, hsnap_json s))
               (all_histograms ())) );
      ]

  let dump ppf =
    Format.fprintf ppf "--- metrics ---@.";
    List.iter
      (fun c ->
        let v = counter_value c in
        if v <> 0 then Format.fprintf ppf "%-28s %d@." c.cname v)
      (all_counters ());
    List.iter
      (fun h ->
        let s = hsnapshot h in
        if s.count > 0 then
          Format.fprintf ppf
            "%-28s n=%d mean=%.0fns p50=%d p90=%d p99=%d p999=%d max=%d@."
            h.hname s.count s.mean_ns s.p50 s.p90 s.p99 s.p999 s.max_ns)
      (all_histograms ())
end

(* Sliding-window histograms: the live telemetry plane.  A window is a
   ring of [epochs] bucket arrays, each covering [epoch_s] seconds;
   recording lands in the slot of the value's absolute epoch and slots
   the clock has moved past are recycled in place, so the record path
   never allocates and a read merges at most [epochs] preallocated
   arrays.  Deliberately lock-free with plain int cells: a lost
   increment under concurrent recorders skews a telemetry percentile by
   one sample, which is harmless; the registry itself is mutexed. *)
module Window = struct
  type t = {
    wname : string;
    epochs : int;
    epoch_s : float;
    wbuckets : int array array;  (* epochs x n_buckets *)
    wcount : int array;
    wsum : float array;
    wmax : int array;
    mutable cur_abs : int;  (* absolute epoch owning the current slot *)
  }

  let make ?(epochs = 10) ?(epoch_s = 1.0) name =
    if epochs < 1 then invalid_arg "Obs.Window.create: epochs";
    if epoch_s <= 0. then invalid_arg "Obs.Window.create: epoch_s";
    {
      wname = name;
      epochs;
      epoch_s;
      wbuckets = Array.make_matrix epochs Metrics.n_buckets 0;
      wcount = Array.make epochs 0;
      wsum = Array.make epochs 0.;
      wmax = Array.make epochs 0;
      cur_abs = 0;
    }

  let wmutex = Mutex.create ()
  let wreg : (string, t) Hashtbl.t = Hashtbl.create 8
  let worder : t list ref = ref []

  let create ?epochs ?epoch_s name =
    Mutex.protect wmutex (fun () ->
        match Hashtbl.find_opt wreg name with
        | Some w -> w
        | None ->
            let w = make ?epochs ?epoch_s name in
            Hashtbl.add wreg name w;
            worder := w :: !worder;
            w)

  let name w = w.wname
  let window_s w = float_of_int w.epochs *. w.epoch_s
  let all () = List.rev !worder
  let find name = Mutex.protect wmutex (fun () -> Hashtbl.find_opt wreg name)

  let clear_slot w i =
    Array.fill w.wbuckets.(i) 0 Metrics.n_buckets 0;
    w.wcount.(i) <- 0;
    w.wsum.(i) <- 0.;
    w.wmax.(i) <- 0

  (* Advance to absolute epoch [abs]: every slot the clock moved past is
     stale (its epoch fell out of the window) and is recycled. *)
  let rotate w abs =
    if abs > w.cur_abs then begin
      let gap = abs - w.cur_abs in
      let n = if gap > w.epochs then w.epochs else gap in
      for k = 1 to n do
        clear_slot w ((w.cur_abs + k) mod w.epochs)
      done;
      w.cur_abs <- abs
    end

  let abs_of w now = int_of_float (now /. w.epoch_s)

  let record_ns w ?now v =
    let now = match now with Some t -> t | None -> Unix.gettimeofday () in
    let v = if v < 0 then 0 else v in
    rotate w (abs_of w now);
    let i = w.cur_abs mod w.epochs in
    let b = Metrics.bucket_of v in
    w.wbuckets.(i).(b) <- w.wbuckets.(i).(b) + 1;
    w.wcount.(i) <- w.wcount.(i) + 1;
    w.wsum.(i) <- w.wsum.(i) +. float_of_int v;
    if v > w.wmax.(i) then w.wmax.(i) <- v

  let record_span_s w ?now dt = record_ns w ?now (int_of_float (dt *. 1e9))

  let snapshot ?now w =
    let now = match now with Some t -> t | None -> Unix.gettimeofday () in
    rotate w (abs_of w now);
    let count = ref 0 and sum = ref 0. and max_v = ref 0 in
    for i = 0 to w.epochs - 1 do
      count := !count + w.wcount.(i);
      sum := !sum +. w.wsum.(i);
      if w.wmax.(i) > !max_v then max_v := w.wmax.(i)
    done;
    if !count = 0 then Metrics.hsnap_zero
    else begin
      let merged = Array.make Metrics.n_buckets 0 in
      Array.iter
        (fun row -> Array.iteri (fun i c -> merged.(i) <- merged.(i) + c) row)
        w.wbuckets;
      Metrics.snap_of_merged merged ~count:!count ~sum:!sum ~max_v:!max_v
    end

  let reset w =
    for i = 0 to w.epochs - 1 do
      clear_slot w i
    done

  let to_json ?now () =
    Json.Obj
      (List.map
         (fun w ->
           let s = snapshot ?now w in
           ( w.wname,
             Json.Obj
               (("window_s", Json.Float (window_s w))
               ::
               (match Metrics.hsnap_json s with
               | Json.Obj kvs -> kvs
               | _ -> [])) ))
         (all ()))
end

module Trace = struct
  type kind =
    | Tx
    | Tx_abort
    | Combine
    | Helping
    | Copy
    | Apply
    | Flush
    | Lambda
    | Sleep
    | Fence
    | Rwlock_acquire
    | Rwlock_contend
    | Recovery
    | Checkpoint
    | Crash
    | Db_op
    | Serve_op
    | Batch
    | Commit
    | Ingress
    | Queue_wait
    | Linger
    | Drain
    | Prepare
    | Decide
    | Ack

  let kind_name = function
    | Tx -> "tx"
    | Tx_abort -> "tx_abort"
    | Combine -> "combine"
    | Helping -> "helping"
    | Copy -> "replica_copy"
    | Apply -> "apply"
    | Flush -> "flush"
    | Lambda -> "lambda"
    | Sleep -> "sleep"
    | Fence -> "fence"
    | Rwlock_acquire -> "rwlock_acquire"
    | Rwlock_contend -> "rwlock_contend"
    | Recovery -> "recovery"
    | Checkpoint -> "checkpoint"
    | Crash -> "crash"
    | Db_op -> "db_op"
    | Serve_op -> "serve_op"
    | Batch -> "batch"
    | Commit -> "commit"
    | Ingress -> "ingress"
    | Queue_wait -> "queue_wait"
    | Linger -> "linger"
    | Drain -> "drain"
    | Prepare -> "prepare"
    | Decide -> "decide"
    | Ack -> "ack"

  let kind_cat = function
    | Fence | Crash -> "pm"
    | Rwlock_acquire | Rwlock_contend | Sleep -> "sync"
    | Db_op | Serve_op | Batch | Commit | Ingress | Queue_wait | Linger | Drain
    | Prepare | Decide | Ack ->
        "db"
    | _ -> "ptm"

  type ring = {
    mutable n : int; (* total events ever recorded on this ring *)
    ks : kind array;
    rts : float array; (* absolute microseconds *)
    rdur : float array; (* microseconds; < 0 encodes an instant *)
    rarg : int array;
    rrid : int array; (* request id; 0 = none *)
  }

  let default_capacity = 16384
  let cap = ref default_capacity
  let on = ref false
  let rings : ring option array = Array.make max_tids None
  let base_us = ref 0.
  let now_us () = Unix.gettimeofday () *. 1e6
  let clear () = Array.fill rings 0 max_tids None

  let enable ?(capacity = default_capacity) () =
    clear ();
    cap := max 16 capacity;
    base_us := now_us ();
    on := true

  let disable () = on := false
  let is_on () = !on

  let ring_for tid =
    match rings.(tid) with
    | Some r -> r
    | None ->
        let c = !cap in
        let r =
          {
            n = 0;
            ks = Array.make c Tx;
            rts = Array.make c 0.;
            rdur = Array.make c 0.;
            rarg = Array.make c 0;
            rrid = Array.make c 0;
          }
        in
        rings.(tid) <- Some r;
        r

  let record k ~tid ~ts ~dur ~arg ~rid =
    let tid = tid land tid_mask in
    let r = ring_for tid in
    let i = r.n mod Array.length r.ks in
    r.ks.(i) <- k;
    r.rts.(i) <- ts;
    r.rdur.(i) <- dur;
    r.rarg.(i) <- arg;
    r.rrid.(i) <- rid;
    r.n <- r.n + 1

  let instant ?(arg = 0) ?(rid = 0) k ~tid =
    if !on then record k ~tid ~ts:(now_us ()) ~dur:(-1.) ~arg ~rid

  (* [t0] is Unix.gettimeofday () sampled at span start, in seconds. *)
  let complete ?(arg = 0) ?(rid = 0) k ~tid ~t0 =
    if !on then begin
      let ts = t0 *. 1e6 in
      record k ~tid ~ts ~dur:(now_us () -. ts) ~arg ~rid
    end

  let span ?(arg = 0) ?(rid = 0) k ~tid f =
    if not !on then f ()
    else begin
      let t0 = Unix.gettimeofday () in
      match f () with
      | r ->
          complete ~arg ~rid k ~tid ~t0;
          r
      | exception e ->
          complete ~arg ~rid k ~tid ~t0;
          raise e
    end

  let recorded () =
    Array.fold_left
      (fun acc -> function None -> acc | Some r -> acc + r.n)
      0 rings

  let dropped () =
    Array.fold_left
      (fun acc -> function
        | None -> acc
        | Some r -> acc + max 0 (r.n - Array.length r.ks))
      0 rings

  let export () : Json.t =
    let evs = ref [] in
    for tid = max_tids - 1 downto 0 do
      match rings.(tid) with
      | None -> ()
      | Some r ->
          let c = Array.length r.ks in
          let first = max 0 (r.n - c) in
          for j = r.n - 1 downto first do
            let i = j mod c in
            let args =
              let v = [ ("v", Json.Int r.rarg.(i)) ] in
              if r.rrid.(i) <> 0 then ("rid", Json.Int r.rrid.(i)) :: v else v
            in
            let common =
              [
                ("name", Json.String (kind_name r.ks.(i)));
                ("cat", Json.String (kind_cat r.ks.(i)));
                ("ts", Json.Float (r.rts.(i) -. !base_us));
                ("pid", Json.Int 0);
                ("tid", Json.Int tid);
                ("args", Json.Obj args);
              ]
            in
            let ev =
              if r.rdur.(i) < 0. then
                Json.Obj (("ph", Json.String "i") :: ("s", Json.String "t") :: common)
              else
                Json.Obj
                  (("ph", Json.String "X") :: ("dur", Json.Float r.rdur.(i)) :: common)
            in
            evs := ev :: !evs
          done
    done;
    let meta =
      Json.Obj
        [
          ("name", Json.String "process_name");
          ("ph", Json.String "M");
          ("pid", Json.Int 0);
          ("args", Json.Obj [ ("name", Json.String "repro") ]);
        ]
    in
    Json.Obj
      [
        ("traceEvents", Json.List (meta :: !evs));
        ("displayTimeUnit", Json.String "ms");
      ]

  let write_file path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Json.to_channel oc (export ());
        output_char oc '\n')
end

let is_active () = Metrics.is_on () || Trace.is_on ()

(* Prometheus text exposition 0.0.4.  Metric names must match
   [a-zA-Z_:][a-zA-Z0-9_:]*; registry names use dots, so sanitize. *)
let prom_name s =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    s

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let prometheus ?(extra = []) () =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun c ->
      let v = Metrics.counter_value c in
      if v <> 0 then begin
        let n = prom_name (Metrics.counter_name c) in
        line "# TYPE %s counter" n;
        line "%s %d" n v
      end)
    (Metrics.all_counters ());
  let summary name ?(labels = "") (s : Metrics.hsnap) =
    let n = prom_name name in
    let q ql v =
      let sep = if labels = "" then "" else "," in
      line "%s{quantile=\"%s\"%s%s} %d" n ql sep labels v
    in
    line "# TYPE %s summary" n;
    q "0.5" s.Metrics.p50;
    q "0.9" s.Metrics.p90;
    q "0.99" s.Metrics.p99;
    q "0.999" s.Metrics.p999;
    line "%s_sum %s" n (prom_float (s.Metrics.mean_ns *. float_of_int s.Metrics.count));
    line "%s_count %d" n s.Metrics.count
  in
  List.iter
    (fun h ->
      let s = Metrics.hsnapshot h in
      if s.Metrics.count > 0 then summary (Metrics.histogram_name h) s)
    (Metrics.all_histograms ());
  List.iter
    (fun w ->
      let s = Window.snapshot w in
      if s.Metrics.count > 0 then
        summary (Window.name w)
          ~labels:(Printf.sprintf "window=\"%s\"" (prom_float (Window.window_s w)))
          s)
    (Window.all ());
  List.iter
    (fun (name, v) ->
      let base =
        match String.index_opt name '{' with
        | Some i -> String.sub name 0 i
        | None -> name
      in
      line "# TYPE %s gauge" base;
      line "%s %s" name (prom_float v))
    extra;
  Buffer.contents buf

(* Standard cross-PTM instruments. *)
let tx_commits = Metrics.counter "ptm.tx.commit"
let tx_aborts = Metrics.counter "ptm.tx.abort"
let help_count = Metrics.counter "ptm.helping"
let copy_count = Metrics.counter "ptm.replica_copy"
let rwlock_contention = Metrics.counter "sync.rwlock.contend"
let backoff_yields = Metrics.counter "sync.backoff.yield"
let tx_latency = Metrics.histogram "ptm.tx.latency"

let tx_committed ~tid ~t0 =
  if Metrics.is_on () then begin
    Metrics.incr tx_commits ~tid;
    Metrics.record_ns tx_latency ~tid
      (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
  end;
  Trace.complete Trace.Tx ~tid ~t0

let tx_aborted ~tid =
  if Metrics.is_on () then Metrics.incr tx_aborts ~tid;
  Trace.instant Trace.Tx_abort ~tid

let helped ~tid =
  if Metrics.is_on () then Metrics.incr help_count ~tid;
  Trace.instant Trace.Helping ~tid

let replica_copied ~tid =
  if Metrics.is_on () then Metrics.incr copy_count ~tid

let rwlock_acquired ~tid = Trace.instant Trace.Rwlock_acquire ~tid

let rwlock_contended ~tid =
  if Metrics.is_on () then Metrics.incr rwlock_contention ~tid;
  Trace.instant Trace.Rwlock_contend ~tid

let backoff_yielded ~tid =
  if Metrics.is_on () then Metrics.incr backoff_yields ~tid

let drain_aborts = Metrics.counter "sync.rwlock.drain_aborted"

let rwlock_drain_aborted ~tid =
  if Metrics.is_on () then Metrics.incr drain_aborts ~tid;
  Trace.instant Trace.Rwlock_contend ~tid

(* Progress instruments for the deterministic-scheduler harness: how
   helping behaves when the announcing thread is stalled or dead. *)
let progress_helped = Metrics.counter "ptm.progress.helped_completion"
let progress_stalled_done = Metrics.counter "ptm.progress.stalled_op_completed"
let progress_gap = Metrics.histogram "ptm.progress.announce_to_done_steps"

let progress_op_completed ~tid ~helped:h ~stalled_announcer ~gap_steps =
  if Metrics.is_on () then begin
    if h then Metrics.incr progress_helped ~tid;
    if stalled_announcer then Metrics.incr progress_stalled_done ~tid;
    if gap_steps >= 0 then Metrics.record_ns progress_gap ~tid gap_steps
  end

(* Media-fault and hardened-recovery instruments.  Fault injection happens
   on a quiesced region (at/after a simulated crash), so the counters are
   attributed to tid 0. *)
let fault_torn = Metrics.counter "pmem.fault.torn_line"
let fault_flip = Metrics.counter "pmem.fault.bit_flip"
let recovery_fallbacks = Metrics.counter "ptm.recovery.fallback"
let recovery_truncations = Metrics.counter "ptm.recovery.log_truncated"
let recovery_failures = Metrics.counter "ptm.recovery.unrecoverable"

let torn_line_persisted () =
  if Metrics.is_on () then Metrics.incr fault_torn ~tid:0

let bit_flip_injected () =
  if Metrics.is_on () then Metrics.incr fault_flip ~tid:0

let recovery_fell_back () =
  if Metrics.is_on () then Metrics.incr recovery_fallbacks ~tid:0

let recovery_truncated_log () =
  if Metrics.is_on () then Metrics.incr recovery_truncations ~tid:0

let recovery_unrecoverable () =
  if Metrics.is_on () then Metrics.incr recovery_failures ~tid:0
