module Checksum = Checksum

let words_per_line = 8 (* 64-byte cache lines of 64-bit words *)

exception Crash_injected

(* Per-thread staging buffer: cache lines pwb'ed but not yet fenced. *)
type staging = {
  mutable lines : int array;
  mutable count : int;
}

(* Per-thread counters, kept apart to avoid cross-thread contention. Indices
   into the [counters] array: *)
let c_pwb = 0
let c_pfence = 1
let c_psync = 2
let c_ntstore = 3
let c_words_written = 4
let c_words_copied = 5
let n_counters = 6

(* Crash-injection plan: when armed, one persistence-relevant event (a
   "step") eventually fires the crash. *)
type plan =
  | No_plan
  | At_step of int (* absolute step number at which to fire *)
  | Probabilistic of { rng : Random.State.t; prob : float }

(* Durable image: either plain process memory (the default) or a
   MAP_SHARED mmap of a region file.  The mapped variant is what makes a
   real [kill -9] an honest power failure: words written back through
   [writeback_line*] land in the kernel page cache and survive the
   process, while the volatile [data] image, staging buffers and dirty
   set die with it — exactly the split the simulated [crash] models.
   All durable accesses are aligned 64-bit word reads/writes, so the two
   representations are interchangeable behind [img_get]/[img_set]. *)
type image =
  | Mem of Bytes.t
  | Map of (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let[@inline] img_get img addr =
  match img with
  | Mem b -> Bytes.get_int64_le b (addr * 8)
  | Map a -> Bigarray.Array1.unsafe_get a addr

let[@inline] img_set img addr v =
  match img with
  | Mem b -> Bytes.set_int64_le b (addr * 8) v
  | Map a -> Bigarray.Array1.unsafe_set a addr v

type t = {
  words : int;
  nlines : int;
  data : Bytes.t; (* volatile (cache) image *)
  durable : image; (* what survives a crash *)
  dirty : Bytes.t; (* one byte per line: written since last made durable *)
  staging : staging array; (* per tid *)
  counters : int array array; (* per tid *)
  rmw_lock : Mutex.t; (* simulation-level atomicity for [cas_word] *)
  mutable flush_cost : int; (* cpu_relax iterations per written-back line *)
  (* Fault injection (see .mli).  [tracking] turns the step counter on;
     [steps] is the monotone event counter; [frozen] latches after an
     injected crash so that the region ignores every store/flush until the
     harness calls [crash]/[crash_with_evictions]. *)
  mutable tracking : bool;
  steps : int Atomic.t;
  mutable plan : plan;
  mutable frozen : bool;
  injected : int Atomic.t;
  (* Media-fault counters (see crash_with_faults / corrupt_words). *)
  torn_lines : int Atomic.t;
  bit_flips : int Atomic.t;
}

(* Device model: approximate per-line write-back latency (see .mli). *)
let default_flush_cost = Atomic.make 0
let set_default_flush_cost n = Atomic.set default_flush_cost n
let set_flush_cost t n = t.flush_cost <- n

let size_words t = t.words

(* Map [words] 64-bit words of [path] as a shared Int64 bigarray.  The
   file is created/truncated when [truncate]; otherwise it must already
   hold exactly [words * 8] bytes. *)
let map_backing ~path ~words ~truncate =
  let flags =
    if truncate then Unix.[ O_RDWR; O_CREAT; O_TRUNC ] else Unix.[ O_RDWR ]
  in
  let fd = Unix.openfile path flags 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      if truncate then Unix.ftruncate fd (words * 8);
      let a =
        Unix.map_file fd Bigarray.int64 Bigarray.c_layout true [| words |]
      in
      Bigarray.array1_of_genarray a)

let mk ~max_threads ~words ~durable =
  let nlines = words / words_per_line in
  {
    words;
    nlines;
    data = Bytes.make (words * 8) '\000';
    durable;
    dirty = Bytes.make nlines '\000';
    staging =
      Array.init max_threads (fun _ -> { lines = Array.make 64 0; count = 0 });
    counters = Array.init max_threads (fun _ -> Array.make n_counters 0);
    rmw_lock = Mutex.create ();
    flush_cost = Atomic.get default_flush_cost;
    tracking = false;
    steps = Atomic.make 0;
    plan = No_plan;
    frozen = false;
    injected = Atomic.make 0;
    torn_lines = Atomic.make 0;
    bit_flips = Atomic.make 0;
  }

let create ?backing ~max_threads ~words () =
  if max_threads < 1 then invalid_arg "Pmem.create: max_threads < 1";
  if words < words_per_line then invalid_arg "Pmem.create: words too small";
  let words = (words + words_per_line - 1) / words_per_line * words_per_line in
  let durable =
    match backing with
    | None -> Mem (Bytes.make (words * 8) '\000')
    | Some path -> Map (map_backing ~path ~words ~truncate:true)
  in
  mk ~max_threads ~words ~durable

let reopen ~max_threads ~backing () =
  if max_threads < 1 then invalid_arg "Pmem.reopen: max_threads < 1";
  let st = Unix.stat backing in
  let bytes = st.Unix.st_size in
  if bytes < words_per_line * 8 || bytes mod (words_per_line * 8) <> 0 then
    invalid_arg
      (Printf.sprintf "Pmem.reopen: %s has %d bytes, not a positive line \
                       multiple" backing bytes);
  let words = bytes / 8 in
  let durable = Map (map_backing ~path:backing ~words ~truncate:false) in
  let t = mk ~max_threads ~words ~durable in
  (* The volatile image of a freshly restarted machine is whatever the
     durable medium holds — same as post-[crash]. *)
  for addr = 0 to words - 1 do
    Bytes.set_int64_le t.data (addr * 8) (img_get durable addr)
  done;
  t

let[@inline] check_addr t addr =
  if addr < 0 || addr >= t.words then
    invalid_arg (Printf.sprintf "Pmem: address %d out of bounds" addr)

let[@inline] line_of addr = addr / words_per_line

(* The crash fires *after* the triggering event took its volatile effect
   (the store landed, the line got staged, the fence drained): the machine
   dies between this instruction and the next one.  [frozen] then turns all
   subsequent mutators into no-ops — the CPU is gone — while keeping the
   dirty-line set intact so that a later [crash_with_evictions] can still
   model arbitrary cache evictions of the at-crash dirty lines. *)
let fire t =
  t.plan <- No_plan;
  t.frozen <- true;
  Atomic.incr t.injected;
  Obs.Trace.instant Obs.Trace.Crash ~tid:0 ~arg:(Atomic.get t.steps);
  raise Crash_injected

let[@inline never] step_slow t =
  let n = 1 + Atomic.fetch_and_add t.steps 1 in
  match t.plan with
  | No_plan -> ()
  | At_step k -> if n >= k then fire t
  | Probabilistic { rng; prob } ->
      if Random.State.float rng 1.0 < prob then fire t

let[@inline] step t = if t.tracking then step_slow t

let[@inline] get_word t addr =
  Sched.yield ();
  check_addr t addr;
  Bytes.get_int64_le t.data (addr * 8)

let[@inline] mark_dirty t addr =
  Bytes.unsafe_set t.dirty (line_of addr) '\001'

let[@inline] set_word t ~tid addr v =
  Sched.yield ();
  check_addr t addr;
  if not t.frozen then begin
    Bytes.set_int64_le t.data (addr * 8) v;
    mark_dirty t addr;
    let c = t.counters.(tid) in
    c.(c_words_written) <- c.(c_words_written) + 1;
    step t
  end

(* Word-by-word copy using aligned 64-bit accesses so that concurrent
   readers of the destination never observe torn words (Bytes.blit could
   interleave at byte granularity). *)
let copy_words_raw src dst ~src_off ~dst_off len =
  for i = 0 to len - 1 do
    Bytes.set_int64_le dst ((dst_off + i) * 8)
      (Bytes.get_int64_le src ((src_off + i) * 8))
  done

let blit_words t ~tid ~src ~dst len =
  if len < 0 then invalid_arg "Pmem.blit_words: negative length";
  if len > 0 then begin
    check_addr t src;
    check_addr t (src + len - 1);
    check_addr t dst;
    check_addr t (dst + len - 1);
    if not t.frozen then begin
      let c = t.counters.(tid) in
      (* Line by line, one step each: an injected crash can land with the
         copy half done, exactly like a real replica copy interrupted by a
         power failure. *)
      for line = line_of dst to line_of (dst + len - 1) do
        Sched.yield ();
        let lo = max dst (line * words_per_line) in
        let hi = min (dst + len - 1) (((line + 1) * words_per_line) - 1) in
        copy_words_raw t.data t.data
          ~src_off:(src + (lo - dst))
          ~dst_off:lo
          (hi - lo + 1);
        Bytes.unsafe_set t.dirty line '\001';
        c.(c_words_copied) <- c.(c_words_copied) + (hi - lo + 1);
        step t
      done
    end
  end

let cas_word t ~tid addr ~expected ~desired =
  (* Yield point before the lock: the rmw critical section itself never
     yields, so a fiber can never be suspended holding [rmw_lock]. *)
  Sched.yield ();
  check_addr t addr;
  (* A frozen region cannot return a meaningful success/failure — and CAS
     retry loops (e.g. CX's [curComb] transition) would spin forever on a
     dead machine — so re-raise instead of no-op'ing. *)
  if t.frozen then raise Crash_injected;
  Mutex.lock t.rmw_lock;
  let cur = Bytes.get_int64_le t.data (addr * 8) in
  let ok = Int64.equal cur expected in
  if ok then begin
    Bytes.set_int64_le t.data (addr * 8) desired;
    mark_dirty t addr;
    let c = t.counters.(tid) in
    c.(c_words_written) <- c.(c_words_written) + 1
  end;
  Mutex.unlock t.rmw_lock;
  (* Step (and possibly raise) only after the lock is released, so an
     injected crash can never leave [rmw_lock] held. *)
  if ok then step t;
  ok

let stage_line t ~tid line =
  let s = t.staging.(tid) in
  if s.count = Array.length s.lines then begin
    let bigger = Array.make (2 * s.count) 0 in
    Array.blit s.lines 0 bigger 0 s.count;
    s.lines <- bigger
  end;
  s.lines.(s.count) <- line;
  s.count <- s.count + 1

let pwb t ~tid addr =
  check_addr t addr;
  if not t.frozen then begin
    stage_line t ~tid (line_of addr);
    let c = t.counters.(tid) in
    c.(c_pwb) <- c.(c_pwb) + 1;
    step t
  end

let pwb_range t ~tid lo hi =
  (* An empty range is a legitimate no-op (e.g. flushing a zero-length
     write-set). *)
  if lo <= hi then begin
    check_addr t lo;
    check_addr t hi;
    if not t.frozen then begin
      let c = t.counters.(tid) in
      for line = line_of lo to line_of hi do
        stage_line t ~tid line;
        c.(c_pwb) <- c.(c_pwb) + 1;
        step t
      done
    end
  end

(* Write a line back to the durable image without the device-latency model
   (used by simulated crashes, which should not pay it). *)
(* Persist [len] words starting at [off] from the volatile image, one
   aligned 64-bit store each — on a mapped image each word hits the
   shared page individually, so a process killed mid-copy leaves a
   prefix of whole words (a torn line, never a torn word). *)
let persist_words t ~off len =
  for i = 0 to len - 1 do
    img_set t.durable (off + i) (Bytes.get_int64_le t.data ((off + i) * 8))
  done

let writeback_line_raw t line =
  let off = line * words_per_line in
  persist_words t ~off words_per_line;
  Bytes.unsafe_set t.dirty line '\000'

(* Write a staged line back to the durable image.  The line contents are the
   ones current at fence time, which is a legal CLWB/SFENCE behaviour. *)
let writeback_line t line =
  writeback_line_raw t line;
  for _ = 1 to t.flush_cost do
    Domain.cpu_relax ()
  done

let drain t ~tid =
  let s = t.staging.(tid) in
  for i = 0 to s.count - 1 do
    writeback_line t s.lines.(i)
  done;
  s.count <- 0

let pfence t ~tid =
  if not t.frozen then begin
    let staged = t.staging.(tid).count in
    drain t ~tid;
    let c = t.counters.(tid) in
    c.(c_pfence) <- c.(c_pfence) + 1;
    Obs.Trace.instant Obs.Trace.Fence ~tid ~arg:staged;
    step t
  end

let psync t ~tid =
  if not t.frozen then begin
    let staged = t.staging.(tid).count in
    drain t ~tid;
    let c = t.counters.(tid) in
    c.(c_psync) <- c.(c_psync) + 1;
    Obs.Trace.instant Obs.Trace.Fence ~tid ~arg:staged;
    step t
  end

let ntstore_word t ~tid addr v =
  check_addr t addr;
  if not t.frozen then begin
    Bytes.set_int64_le t.data (addr * 8) v;
    mark_dirty t addr;
    stage_line t ~tid (line_of addr);
    let c = t.counters.(tid) in
    c.(c_ntstore) <- c.(c_ntstore) + 1;
    c.(c_words_written) <- c.(c_words_written) + 1;
    step t
  end

let ntcopy_words t ~tid ~src ~dst len =
  if len < 0 then invalid_arg "Pmem.ntcopy_words: negative length";
  if len > 0 then begin
    check_addr t src;
    check_addr t (src + len - 1);
    check_addr t dst;
    check_addr t (dst + len - 1);
    if not t.frozen then begin
      let c = t.counters.(tid) in
      for line = line_of dst to line_of (dst + len - 1) do
        Sched.yield ();
        let lo = max dst (line * words_per_line) in
        let hi = min (dst + len - 1) (((line + 1) * words_per_line) - 1) in
        copy_words_raw t.data t.data
          ~src_off:(src + (lo - dst))
          ~dst_off:lo
          (hi - lo + 1);
        Bytes.unsafe_set t.dirty line '\001';
        stage_line t ~tid line;
        c.(c_ntstore) <- c.(c_ntstore) + 1;
        c.(c_words_copied) <- c.(c_words_copied) + (hi - lo + 1);
        step t
      done
    end
  end

let crash t =
  Obs.Trace.instant Obs.Trace.Crash ~tid:0;
  for addr = 0 to t.words - 1 do
    Bytes.set_int64_le t.data (addr * 8) (img_get t.durable addr)
  done;
  Bytes.fill t.dirty 0 t.nlines '\000';
  Array.iter (fun s -> s.count <- 0) t.staging;
  t.frozen <- false;
  t.plan <- No_plan

let crash_with_evictions t ~seed ~prob =
  let rng = Random.State.make [| seed |] in
  for line = 0 to t.nlines - 1 do
    if Bytes.get t.dirty line = '\001' && Random.State.float rng 1.0 < prob
    then writeback_line_raw t line
  done;
  crash t

(* Torn write-back: persist only some of the line's 8 words.  Half the time
   a prefix (a write-back interrupted mid-line), half the time an arbitrary
   proper subset (word-granularity store reordering inside the line).  Every
   single word still persists atomically — 8-byte atomic persists are the
   model's baseline — so a torn line can never yield a torn word. *)
let writeback_line_torn t rng line =
  let off = line * words_per_line in
  (if Random.State.bool rng then begin
     let k = 1 + Random.State.int rng (words_per_line - 1) in
     persist_words t ~off k
   end
   else begin
     (* nonempty proper subset: mask in [1, 2^8 - 2] *)
     let mask = 1 + Random.State.int rng ((1 lsl words_per_line) - 2) in
     for i = 0 to words_per_line - 1 do
       if mask land (1 lsl i) <> 0 then persist_words t ~off:(off + i) 1
     done
   end);
  Atomic.incr t.torn_lines;
  Obs.torn_line_persisted ()

let crash_with_faults t ~seed ~evict_prob ~torn_prob =
  if not (evict_prob >= 0.0 && evict_prob <= 1.0) then
    invalid_arg "Pmem.crash_with_faults: evict_prob not in [0, 1]";
  if not (torn_prob >= 0.0 && torn_prob <= 1.0) then
    invalid_arg "Pmem.crash_with_faults: torn_prob not in [0, 1]";
  let rng = Random.State.make [| seed; 0xfa17 |] in
  for line = 0 to t.nlines - 1 do
    if Bytes.get t.dirty line = '\001' && Random.State.float rng 1.0 < evict_prob
    then
      if Random.State.float rng 1.0 < torn_prob then
        writeback_line_torn t rng line
      else writeback_line_raw t line
  done;
  crash t

let corrupt_words_in t ~seed ~count ~ranges =
  if count < 0 then invalid_arg "Pmem.corrupt_words_in: count < 0";
  let ranges =
    List.filter
      (fun (lo, hi) ->
        check_addr t lo;
        check_addr t hi;
        lo <= hi)
      ranges
  in
  let total = List.fold_left (fun n (lo, hi) -> n + hi - lo + 1) 0 ranges in
  if total > 0 then begin
    let rng = Random.State.make [| seed; 0xb17f |] in
    for _ = 1 to count do
      let i = Random.State.int rng total in
      let rec pick i = function
        | [] -> assert false
        | (lo, hi) :: tl -> if i <= hi - lo then lo + i else pick (i - (hi - lo + 1)) tl
      in
      let addr = pick i ranges in
      let bit = Random.State.int rng 64 in
      let mask = Int64.shift_left 1L bit in
      (* A media error corrupts the durable copy; mirror it into the
         volatile image too so that this can be called on a quiesced,
         post-crash region without racing the cache model. *)
      img_set t.durable addr (Int64.logxor (img_get t.durable addr) mask);
      Bytes.set_int64_le t.data (addr * 8)
        (Int64.logxor (Bytes.get_int64_le t.data (addr * 8)) mask);
      Atomic.incr t.bit_flips;
      Obs.bit_flip_injected ()
    done
  end

let corrupt_words t ~seed ~count =
  corrupt_words_in t ~seed ~count ~ranges:[ (0, t.words - 1) ]

let corrupt_durable_words_in t ~seed ~count ~ranges =
  if count < 0 then invalid_arg "Pmem.corrupt_durable_words_in: count < 0";
  let ranges =
    List.filter
      (fun (lo, hi) ->
        check_addr t lo;
        check_addr t hi;
        lo <= hi)
      ranges
  in
  let total = List.fold_left (fun n (lo, hi) -> n + hi - lo + 1) 0 ranges in
  if total > 0 then begin
    let rng = Random.State.make [| seed; 0xb17f |] in
    for _ = 1 to count do
      let i = Random.State.int rng total in
      let rec pick i = function
        | [] -> assert false
        | (lo, hi) :: tl -> if i <= hi - lo then lo + i else pick (i - (hi - lo + 1)) tl
      in
      let addr = pick i ranges in
      let bit = Random.State.int rng 64 in
      let mask = Int64.shift_left 1L bit in
      (* Silent media corruption: ONLY the durable image is damaged.  The
         volatile copy the running process reads stays intact, so live
         operations cannot observe the rot — only a scrub that re-reads
         [durable_word], or the next crash (which reloads the volatile
         image from the durable one), surfaces it. *)
      img_set t.durable addr (Int64.logxor (img_get t.durable addr) mask);
      Atomic.incr t.bit_flips;
      Obs.bit_flip_injected ()
    done
  end

let durable_word t addr =
  check_addr t addr;
  img_get t.durable addr

(* ---- Fault injection API ---------------------------------------------- *)

let set_step_tracking t on =
  t.tracking <- on;
  if on then Atomic.set t.steps 0

let steps t = Atomic.get t.steps
let crash_pending t = t.plan <> No_plan
let crash_fired t = t.frozen

let inject_crash_after_step t n =
  if n < 1 then invalid_arg "Pmem.inject_crash_after_step: n < 1";
  if not t.tracking then t.tracking <- true;
  t.plan <- At_step (Atomic.get t.steps + n)

let inject_crash_probabilistic t ~seed ~prob =
  if not (prob >= 0.0 && prob <= 1.0) then
    invalid_arg "Pmem.inject_crash_probabilistic: prob not in [0, 1]";
  if not t.tracking then t.tracking <- true;
  t.plan <- Probabilistic { rng = Random.State.make [| seed |]; prob }

let clear_injection t = t.plan <- No_plan

module Stats = struct
  type snapshot = {
    pwb : int;
    pfence : int;
    psync : int;
    ntstore : int;
    words_written : int;
    words_copied : int;
    steps : int;
    crashes_injected : int;
    torn_lines : int;
    bit_flips : int;
  }

  let zero =
    {
      pwb = 0;
      pfence = 0;
      psync = 0;
      ntstore = 0;
      words_written = 0;
      words_copied = 0;
      steps = 0;
      crashes_injected = 0;
      torn_lines = 0;
      bit_flips = 0;
    }

  let add a b =
    {
      pwb = a.pwb + b.pwb;
      pfence = a.pfence + b.pfence;
      psync = a.psync + b.psync;
      ntstore = a.ntstore + b.ntstore;
      words_written = a.words_written + b.words_written;
      words_copied = a.words_copied + b.words_copied;
      steps = a.steps + b.steps;
      crashes_injected = a.crashes_injected + b.crashes_injected;
      torn_lines = a.torn_lines + b.torn_lines;
      bit_flips = a.bit_flips + b.bit_flips;
    }

  let diff a b =
    {
      pwb = a.pwb - b.pwb;
      pfence = a.pfence - b.pfence;
      psync = a.psync - b.psync;
      ntstore = a.ntstore - b.ntstore;
      words_written = a.words_written - b.words_written;
      words_copied = a.words_copied - b.words_copied;
      steps = a.steps - b.steps;
      crashes_injected = a.crashes_injected - b.crashes_injected;
      torn_lines = a.torn_lines - b.torn_lines;
      bit_flips = a.bit_flips - b.bit_flips;
    }

  let fences s = s.pfence + s.psync

  let pp ppf s =
    Format.fprintf ppf
      "pwb=%d pfence=%d psync=%d ntstore=%d written=%d copied=%d steps=%d \
       injected=%d torn=%d flips=%d"
      s.pwb s.pfence s.psync s.ntstore s.words_written s.words_copied s.steps
      s.crashes_injected s.torn_lines s.bit_flips
end

let snapshot_of_counters c =
  {
    Stats.pwb = c.(c_pwb);
    pfence = c.(c_pfence);
    psync = c.(c_psync);
    ntstore = c.(c_ntstore);
    words_written = c.(c_words_written);
    words_copied = c.(c_words_copied);
    steps = 0;
    crashes_injected = 0;
    torn_lines = 0;
    bit_flips = 0;
  }

let stats_of_tid t ~tid = snapshot_of_counters t.counters.(tid)
let stats_per_thread t = Array.map snapshot_of_counters t.counters

let stats t =
  let base =
    Array.fold_left
      (fun acc c -> Stats.add acc (snapshot_of_counters c))
      Stats.zero t.counters
  in
  {
    base with
    Stats.steps = Atomic.get t.steps;
    crashes_injected = Atomic.get t.injected;
    torn_lines = Atomic.get t.torn_lines;
    bit_flips = Atomic.get t.bit_flips;
  }

let reset_stats t =
  Array.iter (fun c -> Array.fill c 0 n_counters 0) t.counters
