(** Simulated byte-addressable non-volatile main memory (NVMM).

    The paper's testbed is Intel Optane DC persistent memory driven with the
    [CLWB] (persistence write-back, "pwb") and [SFENCE] (persistence fence,
    "pfence"/"psync") instructions.  This module replaces that hardware with a
    deterministic model that preserves exactly the properties the paper's
    durable-linearizability arguments rest on:

    - memory is an array of 64-bit words grouped in 64-byte cache lines;
    - a store only modifies the volatile (cache) image;
    - [pwb] stages the containing cache line for write-back;
    - [pfence]/[psync] makes every line staged by the calling thread durable;
    - a crash discards the volatile image: only the durable image survives;
    - optionally, a crash may first "evict" a random subset of dirty lines to
      the durable image, modelling the fact that real caches may write back a
      dirty line at any time, even without an explicit flush.

    All flush instructions are counted per-thread, which is how we reproduce
    the paper's pwb-count measurements (Figure 5 right, Figure 9 right).

    Thread-safety contract: distinct threads may operate on distinct words
    concurrently; concurrent mutation of the same word must be prevented by
    the caller (the PTMs guarantee this with per-replica exclusive locks).
    Word reads/writes use aligned 64-bit accesses and do not tear. *)

(** Checksums and sealed self-validating words for durable metadata
    (re-exported: [Pmem] is this library's root module). *)
module Checksum : module type of Checksum

type t

(** Raised by an armed crash-injection plan (see {!section:inject}) at the
    persistence-relevant event it selected.  After it fires, the region is
    {e frozen}: every store/flush becomes a silent no-op ([cas_word]
    re-raises) until {!crash} or {!crash_with_evictions} is called. *)
exception Crash_injected

(** Number of 64-bit words per simulated cache line (64 bytes). *)
val words_per_line : int

(** [create ~max_threads ~words ()] allocates a region of [words] 64-bit
    words (rounded up to a cache-line multiple) usable by thread ids
    [0 .. max_threads - 1]. The region starts zeroed, and zeroed durable.

    With [?backing:path] the durable image is a [MAP_SHARED] mmap of the
    named region file (created/truncated to size): write-backs land in
    the kernel page cache and therefore survive a [kill -9] of this
    process, while the volatile image, staging buffers and dirty set die
    with it — a real process kill becomes an honest instance of the
    power-failure model.  A kill between the per-word durable stores of
    one line write-back leaves a torn line (never a torn word), the
    fault class {!crash_with_faults} already exercises. *)
val create : ?backing:string -> max_threads:int -> words:int -> unit -> t

(** [reopen ~max_threads ~backing ()] maps an existing region file
    written by [create ?backing] (in this or a previous process) without
    truncating it.  Geometry is taken from the file size, which must be
    a positive cache-line multiple.  The volatile image starts as a copy
    of the durable one — the state of a machine that just powered on —
    so callers run their recovery procedure next. *)
val reopen : max_threads:int -> backing:string -> unit -> t

(** Total number of words in the region. *)
val size_words : t -> int

(** {1 Volatile (cached) accesses} *)

val get_word : t -> int -> int64
val set_word : t -> tid:int -> int -> int64 -> unit

(** [blit_words t ~tid ~src ~dst len] copies [len] words inside the volatile
    image (used for replica copies).  Destination lines become dirty. *)
val blit_words : t -> tid:int -> src:int -> dst:int -> int -> unit

(** [cas_word t ~tid addr ~expected ~desired] atomically compares-and-swaps a
    PM-resident word (the paper's persistency model allows atomic 64-bit
    operations on PM, e.g. CX's [curComb]).  Because the word itself is only
    ever updated by winning CAS operations, later flushes can never regress
    it to an older value. *)
val cas_word : t -> tid:int -> int -> expected:int64 -> desired:int64 -> bool

(** {1 Persistence instructions} *)

(** [pwb t ~tid addr] stages the cache line containing word [addr] for
    write-back by thread [tid].  The line's contents become durable at that
    thread's next [pfence]/[psync] (with the contents as of fence time, which
    is within the allowed behaviours of [CLWB; SFENCE]). *)
val pwb : t -> tid:int -> int -> unit

(** Flush an inclusive word range: one [pwb] per distinct cache line.
    An empty range ([lo > hi]) is a no-op. *)
val pwb_range : t -> tid:int -> int -> int -> unit

(** Persistence fence: make all lines staged by [tid] durable. *)
val pfence : t -> tid:int -> unit

(** [set_default_flush_cost iters] sets a process-wide device model for
    regions created afterwards: every cache line written back at a fence
    busy-waits [iters] [cpu_relax] iterations, approximating the per-line
    CLWB+drain cost of Optane DC PMEM ([iters] ~ 100 is a few hundred ns).
    Defaults to 0 (flushes cost only the copy), which unit tests use;
    the benchmark harness enables it so that flush counts translate into
    time the way they do on the paper's hardware. *)
val set_default_flush_cost : int -> unit

(** Per-region override of the flush cost model. *)
val set_flush_cost : t -> int -> unit

(** Persistence sync: same durability effect as [pfence]; counted apart
    because the paper distinguishes the two (one pfence + one psync per
    transaction). *)
val psync : t -> tid:int -> unit

(** [ntstore_word t ~tid addr v] non-temporal store: writes the word and
    stages its line without a separate [pwb] (models [movnt]). Durable at the
    next fence. *)
val ntstore_word : t -> tid:int -> int -> int64 -> unit

(** [ntcopy_words t ~tid ~src ~dst len] replica copy using non-temporal
    stores: volatile copy + staging of every destination line, counted as
    ntstores rather than pwbs. *)
val ntcopy_words : t -> tid:int -> src:int -> dst:int -> int -> unit

(** {1 Failures and recovery} *)

(** [crash t] simulates a full-system non-corrupting failure: the volatile
    image is replaced by the durable image; all staged lines and dirty state
    are discarded. Deterministic: unflushed lines never survive. *)
val crash : t -> unit

(** [crash_with_evictions t ~seed ~prob] first writes back each dirty line
    with probability [prob] (simulating arbitrary cache evictions before the
    failure), then behaves like [crash].  Eviction write-backs do not pay the
    [flush_cost] device model: no program instruction executes them.
    Correct algorithms must recover from any such outcome. *)
val crash_with_evictions : t -> seed:int -> prob:float -> unit

(** [crash_with_faults t ~seed ~evict_prob ~torn_prob] is the media-fault
    superset of {!crash_with_evictions}: each dirty line is evicted with
    probability [evict_prob], and each evicted line is additionally {e torn}
    with probability [torn_prob] — only a random nonempty proper subset of
    its 8 words reaches the durable image (half the time a prefix, modelling
    a write-back cut short; half the time an arbitrary subset, modelling
    word-granularity reordering).  Individual 64-bit words always persist
    atomically, matching the paper's 8-byte atomic-persist baseline: tearing
    breaks multi-word atomicity only.  Deterministic from [seed] (a
    different stream from [crash_with_evictions], even at [torn_prob = 0]).
    Torn lines are counted in {!Stats} and the [pmem.fault.torn_line]
    metric. *)
val crash_with_faults :
  t -> seed:int -> evict_prob:float -> torn_prob:float -> unit

(** [corrupt_words t ~seed ~count] flips one random bit in each of [count]
    randomly drawn durable words (media errors).  The flip is mirrored into
    the volatile image, so call it on a quiesced region — normally right
    after a crash, before recovery.  Deterministic from [seed]; counted in
    {!Stats} and the [pmem.fault.bit_flip] metric. *)
val corrupt_words : t -> seed:int -> count:int -> unit

(** [corrupt_words_in t ~seed ~count ~ranges] restricts {!corrupt_words} to
    the union of the given inclusive word ranges (empty ranges are skipped);
    used to target durable metadata, where corruption is detectable, rather
    than user payload words, which carry no redundancy by design. *)
val corrupt_words_in :
  t -> seed:int -> count:int -> ranges:(int * int) list -> unit

(** [corrupt_durable_words_in t ~seed ~count ~ranges] is
    {!corrupt_words_in} restricted to the durable image: the volatile copy
    the running process reads is left intact, modelling {e silent} media rot
    under a live region.  Running operations cannot observe the damage; it
    surfaces only to a scrubber re-reading {!durable_word} against expected
    checksums, or at the next crash, when the volatile image is reloaded
    from the rotten durable one.  Same RNG stream as {!corrupt_words_in}
    (equal seeds target equal words/bits); counted in {!Stats} and the
    [pmem.fault.bit_flip] metric. *)
val corrupt_durable_words_in :
  t -> seed:int -> count:int -> ranges:(int * int) list -> unit

(** [durable_word t addr] reads the durable image directly (test oracle). *)
val durable_word : t -> int -> int64

(** {1:inject Crash injection}

    A fault-injection layer for mid-transaction crash testing.  When step
    tracking is on, every persistence-relevant event is numbered by a
    monotone {e step} counter: each [set_word], [ntstore_word], successful
    [cas_word], [pwb], [pfence] and [psync] is one step; [pwb_range],
    [blit_words] and [ntcopy_words] are one step {e per cache line} touched.
    An injection plan picks a step and raises {!Crash_injected} immediately
    after that step's effect, freezing the region (stores/flushes no-op;
    [cas_word] re-raises so that CAS retry loops cannot spin on a dead
    machine; reads still work).  The dirty-line set at the crash point is
    preserved, so following up with {!crash_with_evictions} explores
    arbitrary cache evictions of exactly the lines that were in flux.
    Tracking adds one branch per event when off (the default).

    Step streams are deterministic for single-threaded workloads, which is
    what makes [inject_crash_after_step] reproducible; with concurrent
    threads the numbering depends on the interleaving. *)

(** [set_step_tracking t on] enables/disables the step counter.  Enabling
    (re)sets the counter to zero. *)
val set_step_tracking : t -> bool -> unit

(** Current value of the step counter. *)
val steps : t -> int

(** [inject_crash_after_step t n] arms a crash [n >= 1] steps from now
    (i.e. at absolute step [steps t + n]).  Implies step tracking (without
    resetting the counter).  Replaces any previously armed plan. *)
val inject_crash_after_step : t -> int -> unit

(** [inject_crash_probabilistic t ~seed ~prob] arms a crash that fires at
    each subsequent step with probability [prob], using a dedicated RNG
    seeded with [seed].  Implies step tracking. *)
val inject_crash_probabilistic : t -> seed:int -> prob:float -> unit

(** Disarm the current plan, if any (does not unfreeze a fired crash). *)
val clear_injection : t -> unit

(** Whether a plan is armed and has not fired yet. *)
val crash_pending : t -> bool

(** Whether an injected crash has fired and the region is frozen. *)
val crash_fired : t -> bool

(** {1 Statistics} *)

module Stats : sig
  type snapshot = {
    pwb : int;
    pfence : int;
    psync : int;
    ntstore : int;
    words_written : int;
    words_copied : int;
    steps : int; (* persistence-relevant events seen while tracking *)
    crashes_injected : int; (* Crash_injected raised so far *)
    torn_lines : int; (* lines persisted partially by crash_with_faults *)
    bit_flips : int; (* words corrupted by corrupt_words[_in] *)
  }

  val zero : snapshot
  val add : snapshot -> snapshot -> snapshot
  val diff : snapshot -> snapshot -> snapshot

  (** Total fence instructions ([pfence + psync]). *)
  val fences : snapshot -> int

  val pp : Format.formatter -> snapshot -> unit
end

(** Aggregate counters across all threads, plus the injection counters
    ([steps], [crashes_injected]). *)
val stats : t -> Stats.snapshot

(** Counters of one thread only ([steps]/[crashes_injected] are global and
    reported as 0 here). *)
val stats_of_tid : t -> tid:int -> Stats.snapshot

(** One snapshot per thread id [0 .. max_threads - 1] (see
    {!stats_of_tid}); lets benches report flush imbalance across helper
    threads. *)
val stats_per_thread : t -> Stats.snapshot array

(** Reset all per-thread counters to zero.  The [steps] counter and the
    injected-crash count are left alone: an armed [At_step] plan is relative
    to the absolute step counter. *)
val reset_stats : t -> unit
