(** Checksums and self-validating ("sealed") words for durable metadata.

    The media-fault model ({!Pmem.crash_with_faults}, {!Pmem.corrupt_words})
    can tear a cache line at word granularity and flip bits inside durable
    words.  Two consequences for metadata design:

    - any multi-word durable record can be observed partially written, so
      records need a checksum over the covered words, and
    - any {e single} 64-bit word still persists atomically (8-byte atomic
      persists are the paper's baseline assumption), so a word that embeds
      its own validity tag can be updated and recovered atomically.

    A {e sealed word} packs a payload of up to 48 bits together with a 16-bit
    tag derived from the payload (and an optional [cover] digest of the words
    the payload vouches for).  Torn write-back cannot split payload from tag,
    and a bit flip invalidates the tag with probability [1 - 2^-16].  A salt
    in the tag derivation ensures the all-zero word never unseals, so fresh
    or deliberately wiped metadata reads as invalid. *)

(** splitmix64 finalizer: a cheap 64-bit mixing permutation. *)
val mix : int64 -> int64

(** [fold acc w] absorbs word [w] into digest accumulator [acc]. *)
val fold : int64 -> int64 -> int64

(** [digest ws] folds all words of [ws] from a fixed non-zero seed. *)
val digest : int64 array -> int64

(** Number of payload bits in a sealed word (48). *)
val payload_bits : int

(** [seal ?cover p] packs payload [p] (non-negative, < 2^48) with its tag.
    [cover] mixes an external digest into the tag, binding the sealed word to
    the contents it describes.  @raise Invalid_argument if [p] is out of
    range. *)
val seal : ?cover:int64 -> int -> int64

(** [unseal ?cover w] returns the payload iff the tag matches (same [cover]
    as at seal time).  [None] means the word was torn off another epoch,
    corrupted, or never written. *)
val unseal : ?cover:int64 -> int64 -> int option
