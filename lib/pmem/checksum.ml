(* 64-bit mixing, digests and self-validating sealed words for durable
   metadata.  See checksum.mli for the design rationale. *)

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let fold acc w = mix (Int64.logxor (Int64.mul acc 0x9e3779b97f4a7c15L) w)

let digest words = Array.fold_left fold 0x51ed270b35af7e01L words

(* Sealed words: [payload] (48 bits) | [tag] (16 bits).  The tag is the top
   16 bits of [mix (payload lxor salt) `fold` cover].  The salt guarantees
   that an all-zero word (fresh, wiped or lost region contents) never
   unseals: every valid sealed word must have been written explicitly. *)

let payload_bits = 48
let payload_mask = (1 lsl payload_bits) - 1
let salt = 0xa0761d6478bd642fL

let[@inline] tag_of ~cover payload =
  let h = fold (mix (Int64.logxor (Int64.of_int payload) salt)) cover in
  Int64.to_int (Int64.shift_right_logical h payload_bits) land 0xffff

let seal ?(cover = 0L) payload =
  if payload < 0 || payload > payload_mask then
    invalid_arg "Checksum.seal: payload out of 48-bit range";
  Int64.logor (Int64.of_int payload)
    (Int64.shift_left (Int64.of_int (tag_of ~cover payload)) payload_bits)

let unseal ?(cover = 0L) w =
  let payload = Int64.to_int (Int64.logand w (Int64.of_int payload_mask)) in
  let tag = Int64.to_int (Int64.shift_right_logical w payload_bits) land 0xffff in
  if tag = tag_of ~cover payload then Some payload else None
