(* Deterministic cooperative scheduler: PTM workers as effect fibers,
   one yield point per interposed atomic/Pmem access.  See sched.mli. *)

type _ Effect.t += Yield_eff : unit Effect.t

let nop = fun () -> ()

(* Domain-local so a scheduled run in one domain never perturbs real
   Domain-based tests running elsewhere in the process. *)
let hook_key : (unit -> unit) Domain.DLS.key = Domain.DLS.new_key (fun () -> nop)
let[@inline] yield () = (Domain.DLS.get hook_key) ()
let active () = Domain.DLS.get hook_key != nop
let perform_yield () = Effect.perform Yield_eff

(* Run-scoped state.  A run owns its domain, so plain refs suffice. *)
let cur_fiber : int option ref = ref None
let step_counter = ref 0
let current () = !cur_fiber
let now () = !step_counter

module Atomic = struct
  type 'a t = 'a Stdlib.Atomic.t

  let make = Stdlib.Atomic.make
  let[@inline] get a = yield (); Stdlib.Atomic.get a
  let[@inline] set a v = yield (); Stdlib.Atomic.set a v
  let[@inline] exchange a v = yield (); Stdlib.Atomic.exchange a v

  let[@inline] compare_and_set a expected desired =
    yield ();
    Stdlib.Atomic.compare_and_set a expected desired

  let[@inline] fetch_and_add a n = yield (); Stdlib.Atomic.fetch_and_add a n
  let[@inline] incr a = yield (); Stdlib.Atomic.incr a
  let[@inline] decr a = yield (); Stdlib.Atomic.decr a
end

module Mutex = struct
  type t = { m : Stdlib.Mutex.t; owner : int Stdlib.Atomic.t }

  let free = -1
  let create () = { m = Stdlib.Mutex.create (); owner = Stdlib.Atomic.make free }

  (* Under the scheduler the [owner] word IS the lock and contention is
     resolved by spinning across yield points; under Domains the OS
     mutex is the lock and [owner] is bookkeeping for [holder].  A given
     instance is only ever used in one mode at a time (the harness
     creates its PTM instances inside the scheduled run). *)
  (* Acquisition and release are yield points, like every interposed
     atomic op.  The yield BEFORE each CAS attempt matters for fairness:
     without it a fiber that unlocks and immediately relocks does both
     inside one scheduler step, so the lock is never observably free at
     a step boundary and the other fibers starve forever — a harness
     artifact no OS scheduler exhibits. *)
  let lock t ~tid =
    if active () then begin
      yield ();
      while not (Stdlib.Atomic.compare_and_set t.owner free tid) do
        yield ()
      done
    end
    else begin
      Stdlib.Mutex.lock t.m;
      Stdlib.Atomic.set t.owner tid
    end

  let unlock t ~tid =
    let o = Stdlib.Atomic.get t.owner in
    if o <> tid then
      invalid_arg
        (Printf.sprintf "Sched.Mutex.unlock: tid %d does not hold the lock (%s)"
           tid
           (if o = free then "free" else "owner " ^ string_of_int o));
    if active () then yield ();
    Stdlib.Atomic.set t.owner free;
    if not (active ()) then Stdlib.Mutex.unlock t.m

  let holder t =
    let o = Stdlib.Atomic.get t.owner in
    if o = free then None else Some o

  (* Crash-recovery only: lock state is volatile and must not survive a
     simulated machine failure (a fiber suspended inside the critical
     section is gone).  Callers guarantee quiescence — under Domains that
     means no live thread holds the lock, so the OS mutex is already
     unlocked and clearing the owner word suffices. *)
  let reset t = Stdlib.Atomic.set t.owner free
end

type injection =
  | Stall of { tid : int; at_step : int; duration : int option }
  | Kill of { tid : int; at_step : int }

type status = Runnable | Finished | Excepted of exn | Stalled | Killed

type report = {
  steps : int;
  statuses : status array;
  applied : (int * int) list;
  budget_exhausted : bool;
}

let pp_status ppf = function
  | Runnable -> Format.fprintf ppf "blocked"
  | Finished -> Format.fprintf ppf "finished"
  | Excepted e -> Format.fprintf ppf "raised %s" (Printexc.to_string e)
  | Stalled -> Format.fprintf ppf "stalled"
  | Killed -> Format.fprintf ppf "killed"

type fiber = {
  id : int;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable started : bool;
  mutable status : status;
  mutable wake_at : int;  (* only meaningful while [status = Stalled] *)
  mutable pending : injection option;  (* due/deferred adversary action *)
}

let running = ref false

let run ?(seed = 0) ?(budget = 2_000_000) ?(injections = []) ?hazard ?stop_at
    ~num_fibers body =
  if !running || active () then invalid_arg "Sched.run: nested run";
  List.iter
    (fun inj ->
      let tid = match inj with Stall { tid; _ } | Kill { tid; _ } -> tid in
      if tid < 0 || tid >= num_fibers then
        invalid_arg "Sched.run: injection tid out of range")
    injections;
  let fibers =
    Array.init num_fibers (fun id ->
        {
          id;
          cont = None;
          started = false;
          status = Runnable;
          wake_at = max_int;
          pending = None;
        })
  in
  List.iter
    (fun inj ->
      let tid = match inj with Stall { tid; _ } | Kill { tid; _ } -> tid in
      fibers.(tid).pending <- Some inj)
    injections;
  let rng = Random.State.make [| seed; 0x5ced |] in
  let applied = ref [] in
  let budget_exhausted = ref false in
  let handler (f : fiber) :
      (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> f.status <- Finished);
      exnc = (fun e -> f.status <- Excepted e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield_eff ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  f.cont <- Some k)
          | _ -> None);
    }
  in
  let resume (f : fiber) =
    incr step_counter;
    cur_fiber := Some f.id;
    Domain.DLS.set hook_key perform_yield;
    (match f.cont with
    | Some k ->
        f.cont <- None;
        Effect.Deep.continue k ()
    | None ->
        f.started <- true;
        Effect.Deep.match_with body f.id (handler f));
    Domain.DLS.set hook_key nop;
    cur_fiber := None
  in
  (* Injections land between fiber steps, i.e. exactly at yield points.
     [hazard] (harness-supplied, runs with the hook uninstalled) defers
     an injection while stopping the thread right now would wedge the
     simulation itself rather than exercise the algorithm. *)
  let try_apply (f : fiber) =
    match f.pending with
    | Some inj when f.status = Runnable -> (
        let at_step =
          match inj with Stall { at_step; _ } | Kill { at_step; _ } -> at_step
        in
        if
          !step_counter >= at_step
          && (match hazard with None -> true | Some h -> not (h f.id))
        then begin
          f.pending <- None;
          applied := (f.id, !step_counter) :: !applied;
          match inj with
          | Kill _ ->
              f.status <- Killed;
              f.cont <- None
          | Stall { duration; _ } ->
              f.status <- Stalled;
              f.wake_at <-
                (match duration with
                | None -> max_int
                | Some d -> !step_counter + d)
        end)
    | _ -> ()
  in
  let wake (f : fiber) =
    if f.status = Stalled && f.wake_at <= !step_counter then begin
      f.status <- Runnable;
      f.wake_at <- max_int
    end
  in
  let finish () =
    {
      steps = !step_counter;
      statuses = Array.map (fun f -> f.status) fibers;
      applied = List.rev !applied;
      budget_exhausted = !budget_exhausted;
    }
  in
  running := true;
  step_counter := 0;
  let restore () =
    running := false;
    step_counter := 0;
    cur_fiber := None;
    Domain.DLS.set hook_key nop
  in
  Fun.protect ~finally:restore @@ fun () ->
  let stopped = ref false in
  while not !stopped do
    Array.iter wake fibers;
    Array.iter try_apply fibers;
    let fs =
      Array.fold_right
        (fun f acc -> if f.status = Runnable then f :: acc else acc)
        fibers []
    in
    match fs with
    | [] -> (
        (* Nothing runnable: either everyone is done/dead, or only timed
           stalls remain — fast-forward the clock to the earliest wake. *)
        let next_wake =
          Array.fold_left
            (fun acc f ->
              if f.status = Stalled && f.wake_at < acc then f.wake_at else acc)
            max_int fibers
        in
        if next_wake = max_int then stopped := true
        else step_counter := max !step_counter next_wake)
    | fs ->
        if (match stop_at with Some s -> !step_counter >= s | None -> false)
        then stopped := true
        else if !step_counter >= budget then begin
          budget_exhausted := true;
          stopped := true
        end
        else
          let f = List.nth fs (Random.State.int rng (List.length fs)) in
          resume f
  done;
  finish ()
