(** Deterministic cooperative scheduler for progress testing.

    PTM workers run as fibers (OCaml effects) inside a single domain.
    Every interposed atomic operation ({!Atomic}, and the word-granular
    Pmem accessors) is a yield point: the fiber suspends and a seeded
    scheduler picks the next runnable fiber, so a whole multi-threaded
    execution becomes a deterministic function of the schedule seed.

    On top of the seeded-random strategy the scheduler supports two
    adversarial injections aimed at wait-freedom:

    - {b stall(tid, at-step)}: from scheduler step [at-step] on, [tid] is
      no longer scheduled — forever, or for a bounded number of steps.
      The thread is suspended mid-operation at whatever yield point it
      happened to be in.
    - {b kill(tid, at-step)}: the thread never runs again (its
      continuation is dropped).

    A wait-free PTM must let the {e other} threads finish the stalled
    thread's announced operation; a blocking PTM will exhaust the step
    budget, which the harness reports as [budget_exhausted] instead of
    hanging.

    Outside a scheduled run every yield point is a no-op (one
    domain-local read), so the interposed primitives behave identically
    under real [Domain]s. *)

(** [true] while the calling domain is executing fiber code inside
    {!run}.  Sync primitives use this to choose fiber-safe blocking
    (spin at yield points) over OS blocking. *)
val active : unit -> bool

(** The yield point.  Inside a scheduled run: suspend the current fiber
    and let the scheduler pick the next one.  Outside: no-op. *)
val yield : unit -> unit

(** Fiber id ([0 .. num_fibers-1]) of the currently executing fiber, or
    [None] outside a scheduled run. *)
val current : unit -> int option

(** Global scheduler step counter of the run in progress ([0] outside).
    One step = one fiber resume. *)
val now : unit -> int

(** [Stdlib.Atomic] with a yield point before every access (except
    [make], which is initialization).  [type 'a t = 'a Stdlib.Atomic.t],
    so interposed code interoperates with plain atomics. *)
module Atomic : sig
  type 'a t = 'a Stdlib.Atomic.t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
  val decr : int t -> unit
end

(** A mutex usable both under real [Domain]s (delegates to
    [Stdlib.Mutex]) and under the scheduler (spins at yield points, so a
    blocked fiber burns scheduler steps instead of deadlocking the
    domain).  Tracks its holder for the blocking-detection adversary. *)
module Mutex : sig
  type t

  val create : unit -> t
  val lock : t -> tid:int -> unit
  val unlock : t -> tid:int -> unit

  (** Thread currently holding the lock, if any. *)
  val holder : t -> int option

  (** Crash-recovery use only: forcibly mark the lock free.  Lock state
      is volatile and does not survive a simulated machine failure — a
      fiber suspended inside the critical section never resumes.  The
      caller guarantees no live thread holds the lock. *)
  val reset : t -> unit
end

(** Adversarial schedule injections. *)
type injection =
  | Stall of { tid : int; at_step : int; duration : int option }
      (** Stop scheduling [tid] once the global step counter reaches
          [at_step]; resume it after [duration] further steps, or never
          ([None]). *)
  | Kill of { tid : int; at_step : int }
      (** [tid] never runs again after [at_step]. *)

type status =
  | Runnable  (** still had work to do when the run ended (blocked) *)
  | Finished
  | Excepted of exn
  | Stalled
  | Killed

type report = {
  steps : int;  (** scheduler steps consumed *)
  statuses : status array;  (** per-fiber final status *)
  applied : (int * int) list;
      (** [(tid, step)] at which each injection actually landed — equal
          to the requested step unless deferred by [hazard] *)
  budget_exhausted : bool;
      (** the run was cut off with runnable fibers left: some live
          thread could not finish within [budget] steps (a blocked or
          livelocked execution) *)
}

val pp_status : Format.formatter -> status -> unit

(** [run ~seed ~num_fibers body] executes [body 0 .. body (n-1)] as
    fibers under the seeded-random scheduler until every fiber is
    finished, killed, or stalled forever — or [budget] steps elapse.

    [injections]: stall/kill adversary, applied at yield-point
    granularity.  [hazard tid] (evaluated between steps, never inside a
    fiber) defers an injection while [true]: used to avoid stalling a
    thread at an instant where the simulation itself — not the algorithm
    under test — would lose progress (e.g. OneFile's combiner register,
    which on real hardware is released by the OS scheduler in bounded
    time).  A deferred injection lands at the target's next hazard-free
    yield point; the actual step is reported in [applied].

    [stop_at]: end the run unconditionally once the step counter reaches
    this value, leaving fibers suspended — the whole-machine crash used
    by the stall+crash+recovery composition.

    @raise Invalid_argument on nested [run] or out-of-range injection
    tids. *)
val run :
  ?seed:int ->
  ?budget:int ->
  ?injections:injection list ->
  ?hazard:(int -> bool) ->
  ?stop_at:int ->
  num_fibers:int ->
  (int -> unit) ->
  report
