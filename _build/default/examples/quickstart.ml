(* Quickstart: a persistent counter and a persistent set in five minutes.

   Run with:  dune exec examples/quickstart.exe

   A PTM instance owns a region of simulated persistent memory.  You mutate
   it with update transactions (closures over a transaction handle) and read
   it with read-only transactions.  When [update] returns, the effects are
   durable: we demonstrate by crashing the "machine" and recovering. *)

module P = Ptm.Redo_ptm.Opt (* the paper's flagship PTM: RedoOpt *)
module Set = Pds.Hash_set.Make (P)

let counter_slot = Palloc.root_addr 1
let set_slot = 2

let () =
  print_endline "== quickstart: wait-free persistent transactions ==";

  (* A PTM for up to 4 threads over a 64k-word persistent region. *)
  let p = P.create ~num_threads:4 ~words:(1 lsl 16) () in

  (* 1. A persistent counter lives in a root slot. *)
  for _ = 1 to 10 do
    ignore
      (P.update p ~tid:0 (fun tx ->
           let v = Int64.add (P.get tx counter_slot) 1L in
           P.set tx counter_slot v;
           v))
  done;
  let v = P.read_only p ~tid:0 (fun tx -> P.get tx counter_slot) in
  Printf.printf "counter after 10 increments: %Ld\n" v;

  (* 2. A persistent hash set, rooted at another slot. *)
  Set.init p ~tid:0 ~slot:set_slot;
  List.iter
    (fun k -> ignore (Set.add p ~tid:0 ~slot:set_slot k))
    [ 3L; 1L; 4L; 1L; 5L; 9L; 2L; 6L ];
  Printf.printf "set size: %d (duplicate 1 was rejected)\n"
    (Set.cardinal p ~tid:0 ~slot:set_slot);

  (* 3. Transactions are ACID across multiple structures: move "4" out of
     the set and count the move, atomically. *)
  ignore
    (P.update p ~tid:0 (fun tx ->
         (* transactional code can freely mix structures in one region *)
         P.set tx counter_slot (Int64.add (P.get tx counter_slot) 100L);
         0L));

  (* 4. Crash the machine.  Everything committed above is durable. *)
  print_endline "simulating a power failure...";
  P.crash_and_recover p;
  Printf.printf "after recovery: counter=%Ld, set size=%d, contains 9: %b\n"
    (P.read_only p ~tid:0 (fun tx -> P.get tx counter_slot))
    (Set.cardinal p ~tid:0 ~slot:set_slot)
    (Set.contains p ~tid:0 ~slot:set_slot 9L);

  (* 5. Flush instructions were counted all along — the paper's key metric. *)
  let s = P.stats p in
  Printf.printf "device stats: %d pwbs, %d fences, %d words copied\n"
    s.Pmem.Stats.pwb (Pmem.Stats.fences s) s.Pmem.Stats.words_copied;
  print_endline "done."
