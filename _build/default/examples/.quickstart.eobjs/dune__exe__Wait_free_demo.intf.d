examples/wait_free_demo.mli:
