examples/universal_construction.mli:
