examples/quickstart.mli:
