examples/kv_store.ml: Domain Kv List Option Printf String
