examples/bank.mli:
