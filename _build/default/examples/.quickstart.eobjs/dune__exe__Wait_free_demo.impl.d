examples/wait_free_demo.ml: Array Atomic Domain Int64 List Palloc Printf Ptm Unix
