examples/universal_construction.ml: Array Domain Int64 List Map Palloc Printf Ptm Random
