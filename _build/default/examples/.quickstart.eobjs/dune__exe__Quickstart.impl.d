examples/quickstart.ml: Int64 List Palloc Pds Pmem Printf Ptm
