examples/bank.ml: Domain Int64 List Palloc Pds Printf Ptm Random
