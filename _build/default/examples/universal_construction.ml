(* The universal-construction pitch, verbatim: take an UNMODIFIED
   sequential OCaml data structure, wrap each method in a lambda, and get a
   linearizable wait-free concurrent object.

   Run with:  dune exec examples/universal_construction.exe

   Here the sequential object is a plain record with a Map and a running
   total — code with zero knowledge of concurrency — shared by four domains
   through the (volatile) CX universal construction.  The same closures
   then run against ONLL-style registered operations to show the logical-
   logging flavor of generic constructions. *)

module Cx = Ptm.Cx

(* An ordinary sequential "order book": nothing concurrent about it. *)
module M = Map.Make (Int64)

type book = {
  mutable orders : int64 M.t;
  mutable volume : int64;
}

let copy_book b = { orders = b.orders; volume = b.volume }

let place_order id qty (b : book) =
  if M.mem id b.orders then 0L
  else begin
    b.orders <- M.add id qty b.orders;
    b.volume <- Int64.add b.volume qty;
    1L
  end

let cancel_order id (b : book) =
  match M.find_opt id b.orders with
  | None -> 0L
  | Some qty ->
      b.orders <- M.remove id b.orders;
      b.volume <- Int64.sub b.volume qty;
      1L

let () =
  print_endline "== universal_construction: sequential code, wait-free object ==";
  let nthreads = 4 in
  let uc = Cx.create ~num_threads:nthreads ~copy:copy_book
      { orders = M.empty; volume = 0L } in

  (* Four domains place and cancel orders concurrently; every operation is
     just the sequential function wrapped in a lambda. *)
  let ds =
    List.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            let st = Random.State.make [| tid |] in
            for i = 0 to 199 do
              let id = Int64.of_int ((tid * 1000) + i) in
              let qty = Int64.of_int (1 + Random.State.int st 99) in
              ignore (Cx.apply_update uc ~tid (place_order id qty));
              if i mod 3 = 0 then
                ignore (Cx.apply_update uc ~tid (cancel_order id))
            done))
  in
  List.iter Domain.join ds;

  let count =
    Cx.apply_read uc ~tid:0 (fun b -> Int64.of_int (M.cardinal b.orders))
  in
  let volume = Cx.apply_read uc ~tid:0 (fun b -> b.volume) in
  let check =
    Cx.apply_read uc ~tid:0 (fun b ->
        M.fold (fun _ q acc -> Int64.add acc q) b.orders 0L)
  in
  Printf.printf "orders: %Ld  volume: %Ld  (recomputed: %Ld, %s)\n" count volume
    check
    (if Int64.equal volume check then "consistent" else "INCONSISTENT");
  assert (Int64.equal volume check);

  (* The persistent, logical-logging flavor: the same operations registered
     with ONLL and replayed from its persistent log across a crash. *)
  print_endline "-- same object, ONLL-style persistent logical logging --";
  let o = Ptm.Onll.create ~num_threads:2 ~words:8192 () in
  let slot_total = Palloc.root_addr 1 and slot_count = Palloc.root_addr 2 in
  let place =
    Ptm.Onll.register o (fun tx args ->
        Ptm.Onll.set tx slot_total (Int64.add (Ptm.Onll.get tx slot_total) args.(0));
        Ptm.Onll.set tx slot_count (Int64.add (Ptm.Onll.get tx slot_count) 1L);
        1L)
  in
  for i = 1 to 10 do
    ignore (Ptm.Onll.invoke o ~tid:0 place [| Int64.of_int (i * 10) |])
  done;
  Ptm.Onll.crash_and_recover o;
  Printf.printf "after crash: %Ld orders, total quantity %Ld\n"
    (Ptm.Onll.read_only o ~tid:0 (fun tx -> Ptm.Onll.get tx slot_count))
    (Ptm.Onll.read_only o ~tid:0 (fun tx -> Ptm.Onll.get tx slot_total));
  print_endline "done."
