(* Wait-freedom and helping, made visible.

   Run with:  dune exec examples/wait_free_demo.exe

   Two demonstrations of the property that separates these PTMs from
   lock-based designs:

   1. Helping: a thread publishes an operation and is then (artificially)
      slowed down; its operation still completes and becomes durable,
      executed by the OTHER thread through the combining consensus.

   2. Progress under a blocking design vs a wait-free design: the same
      contended counter workload on PMDK (one global lock) and on RedoOpt
      (N+1 replicas + consensus), showing per-thread completion counts —
      with the wait-free PTM no thread starves even though all of them
      hammer the same word. *)

let helping_demo () =
  print_endline "-- helping: a slow thread's operation completes anyway --";
  let module P = Ptm.Redo_ptm.Opt in
  let p = P.create ~num_threads:2 ~words:(1 lsl 12) () in
  let slot = Palloc.root_addr 1 in
  let slow_done = Atomic.make false in
  (* Thread 1 hammers updates; thread 0 submits one update and immediately
     sleeps inside its own retry loop (the consensus executes it). *)
  let busy =
    Domain.spawn (fun () ->
        while not (Atomic.get slow_done) do
          ignore
            (P.update p ~tid:1 (fun tx ->
                 P.set tx (Palloc.root_addr 2)
                   (Int64.add (P.get tx (Palloc.root_addr 2)) 1L);
                 0L))
        done)
  in
  let r =
    P.update p ~tid:0 (fun tx ->
        P.set tx slot 42L;
        42L)
  in
  Atomic.set slow_done true;
  Domain.join busy;
  Printf.printf "slow thread's update returned %Ld; durable value = %Ld\n" r
    (P.read_only p ~tid:0 (fun tx -> P.get tx slot));
  P.crash_and_recover p;
  Printf.printf "still there after a crash: %Ld\n"
    (P.read_only p ~tid:0 (fun tx -> P.get tx slot))

let contention_demo (type t tx)
    (module P : Ptm.Ptm_intf.S with type t = t and type tx = tx) =
  let nthreads = 4 in
  let p = P.create ~num_threads:nthreads ~words:(1 lsl 12) () in
  let slot = Palloc.root_addr 1 in
  let per_thread = Array.make nthreads 0 in
  let deadline = Unix.gettimeofday () +. 0.5 in
  let ds =
    List.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            while Unix.gettimeofday () < deadline do
              ignore
                (P.update p ~tid (fun tx ->
                     P.set tx slot (Int64.add (P.get tx slot) 1L);
                     0L));
              per_thread.(tid) <- per_thread.(tid) + 1
            done))
  in
  List.iter Domain.join ds;
  let total = Array.fold_left ( + ) 0 per_thread in
  let mn = Array.fold_left min max_int per_thread in
  Printf.printf "%-10s total=%-8d per-thread min=%-6d max=%-6d %s\n" P.name
    total mn
    (Array.fold_left max 0 per_thread)
    (if mn = 0 then "(a thread starved!)" else "(every thread progressed)")

let () =
  print_endline "== wait_free_demo ==";
  helping_demo ();
  print_endline
    "-- 4 threads incrementing ONE contended persistent counter for 0.5s --";
  contention_demo (module Ptm.Pmdk_sim);
  contention_demo (module Ptm.Redo_ptm.Opt);
  print_endline "done."
