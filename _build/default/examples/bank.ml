(* A bank with wait-free durable transfers and an audit trail.

   Run with:  dune exec examples/bank.exe

   This exercises the property the paper's introduction motivates:
   applications keep SEVERAL persistent structures and need consistent
   multi-step ACID transactions across them.  Here one PTM region holds
   (a) an array of account balances and (b) a persistent audit queue;
   every transfer debits, credits and appends an audit record in a single
   durable-linearizable transaction, concurrently from several threads,
   with crashes injected between batches.  The invariants — total balance
   conserved, audit length = committed transfers — hold at every recovery. *)

module P = Ptm.Redo_ptm.Opt
module Q = Pds.Pqueue.Make (P)

let n_accounts = 16
let initial_balance = 1_000L
let accounts_slot = Palloc.root_addr 1
let audit_slot = 2
let transfers_slot = Palloc.root_addr 3

let balance_addr tx i = Int64.to_int (P.get tx accounts_slot) + i

let total p =
  P.read_only p ~tid:0 (fun tx ->
      let s = ref 0L in
      for i = 0 to n_accounts - 1 do
        s := Int64.add !s (P.get tx (balance_addr tx i))
      done;
      !s)

let () =
  print_endline "== bank: multi-structure ACID transactions with crashes ==";
  let nthreads = 3 in
  let p = P.create ~num_threads:nthreads ~words:(1 lsl 16) () in
  ignore
    (P.update p ~tid:0 (fun tx ->
         let a = P.alloc tx n_accounts in
         for i = 0 to n_accounts - 1 do
           P.set tx (a + i) initial_balance
         done;
         P.set tx accounts_slot (Int64.of_int a);
         P.set tx transfers_slot 0L;
         0L));
  Q.init p ~tid:0 ~slot:audit_slot;

  for round = 1 to 3 do
    (* Concurrent transfer batch. *)
    let ds =
      List.init nthreads (fun tid ->
          Domain.spawn (fun () ->
              let st = Random.State.make [| round; tid |] in
              for _ = 1 to 50 do
                let src = Random.State.int st n_accounts in
                let dst = Random.State.int st n_accounts in
                let amount = Int64.of_int (Random.State.int st 50) in
                ignore
                  (P.update p ~tid (fun tx ->
                       let bs = balance_addr tx src and bd = balance_addr tx dst in
                       if Int64.compare (P.get tx bs) amount >= 0 && src <> dst
                       then begin
                         P.set tx bs (Int64.sub (P.get tx bs) amount);
                         P.set tx bd (Int64.add (P.get tx bd) amount);
                         P.set tx transfers_slot
                           (Int64.add (P.get tx transfers_slot) 1L);
                         1L
                       end
                       else 0L))
              done))
    in
    List.iter Domain.join ds;
    (* Audit the committed count into the persistent queue, then crash. *)
    let committed = P.read_only p ~tid:0 (fun tx -> P.get tx transfers_slot) in
    Q.enqueue p ~tid:0 ~slot:audit_slot committed;
    Printf.printf "round %d: committed transfers so far = %Ld, total = %Ld\n"
      round committed (total p);
    print_endline "  ...crash...";
    P.crash_and_recover p;
    let t = total p in
    Printf.printf "  recovered: total = %Ld (%s), audit entries = %d\n" t
      (if Int64.equal t (Int64.mul (Int64.of_int n_accounts) initial_balance)
       then "conserved"
       else "VIOLATED!")
      (Q.length p ~tid:0 ~slot:audit_slot);
    assert (Int64.equal t (Int64.mul (Int64.of_int n_accounts) initial_balance))
  done;
  print_endline "invariants held across all crashes. done."
