(** Shared benchmark plumbing: PTM registry, throughput measurement,
    table rendering.

    Scaling note (see EXPERIMENTS.md): the paper's testbed has 40 hardware
    threads and real Optane; this container has one core and a simulated
    device, so runs are sized in operations (not 20-second windows) and the
    printed pwb/fence counts — which the paper identifies as the
    performance-governing metric — are exact, not sampled. *)

type ptm_entry = { pname : string; boxed : Ptm.Ptm_intf.boxed }

let all_ptms =
  [
    { pname = "PMDK"; boxed = Ptm.Ptm_intf.Boxed (module Ptm.Pmdk_sim) };
    { pname = "OneFile"; boxed = Ptm.Ptm_intf.Boxed (module Ptm.Onefile) };
    { pname = "RomulusLR"; boxed = Ptm.Ptm_intf.Boxed (module Ptm.Romulus) };
    { pname = "CX-PUC"; boxed = Ptm.Ptm_intf.Boxed (module Ptm.Cx_ptm.Puc) };
    { pname = "CX-PTM"; boxed = Ptm.Ptm_intf.Boxed (module Ptm.Cx_ptm.Ptm) };
    { pname = "Redo"; boxed = Ptm.Ptm_intf.Boxed (module Ptm.Redo_ptm.Base) };
    { pname = "RedoTimed"; boxed = Ptm.Ptm_intf.Boxed (module Ptm.Redo_ptm.Timed) };
    { pname = "RedoOpt"; boxed = Ptm.Ptm_intf.Boxed (module Ptm.Redo_ptm.Opt) };
  ]

let find_ptms names =
  (* preserves the order of [names], so tables can pin their baseline row *)
  List.map (fun n -> List.find (fun e -> e.pname = n) all_ptms) names

type run = {
  ops : int;
  seconds : float;
  stats : Pmem.Stats.snapshot;
}

let ops_per_sec r = if r.seconds > 0. then float_of_int r.ops /. r.seconds else 0.
let pwbs_per_op r =
  if r.ops = 0 then 0.
  else float_of_int (r.stats.Pmem.Stats.pwb + r.stats.Pmem.Stats.ntstore) /. float_of_int r.ops

let fences_per_op r =
  if r.ops = 0 then 0. else float_of_int (Pmem.Stats.fences r.stats) /. float_of_int r.ops

(** Run [per_thread] iterations of [op tid i] on [threads] domains against a
    fresh instance created by [setup]; returns the run plus whatever [setup]
    returned. *)
let run_threads ~threads ~per_thread ~stats0 ~stats1 op =
  let t0 = Unix.gettimeofday () in
  let s0 = stats0 () in
  let ds =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per_thread - 1 do
              op tid i
            done))
  in
  List.iter Domain.join ds;
  let s1 = stats1 () in
  {
    ops = threads * per_thread;
    seconds = Unix.gettimeofday () -. t0;
    stats = Pmem.Stats.diff s1 s0;
  }

(* ---- output helpers ---- *)

let hrule width = print_endline (String.make width '-')

let section title =
  print_newline ();
  hrule 78;
  Printf.printf "%s\n" title;
  hrule 78

let table_header cols =
  List.iter (fun (w, h) -> Printf.printf "%-*s" w h) cols;
  print_newline ();
  hrule (List.fold_left (fun a (w, _) -> a + w) 0 cols)

let fmt_rate r =
  if r >= 1e6 then Printf.sprintf "%.2fM" (r /. 1e6)
  else if r >= 1e3 then Printf.sprintf "%.1fk" (r /. 1e3)
  else Printf.sprintf "%.0f" r
