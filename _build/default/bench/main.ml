(** Benchmark driver: regenerates every table and figure of the paper's
    evaluation (§6) plus an ablation of the RedoOpt optimizations and
    Bechamel latency fits.

    Usage:
      dune exec bench/main.exe                 # all experiments, quick scale
      dune exec bench/main.exe -- fig4 fig5    # a subset
      dune exec bench/main.exe -- --full all   # larger, paper-shaped runs

    See EXPERIMENTS.md for the paper-vs-measured discussion of each
    experiment. *)

let experiments : (string * string * (quick:bool -> unit -> unit)) list =
  [
    ("fig1", "PTM design-space table (measured)", Bench_fig1.run);
    ("fig4", "SPS microbenchmark", Bench_fig4.run);
    ("fig5", "persistent queue", Bench_fig5.run);
    ("fig6", "list/tree/hash sets", Bench_fig6.run);
    ("tab1", "update-transaction time breakdown", Bench_tab1.run);
    ("fig7", "db_bench read workloads", Bench_db.fig7);
    ("fig8", "memory usage and recovery", Bench_db.fig8);
    ("fig9", "fillrandom throughput and pwbs", Bench_db.fig9);
    ("dbx", "db_bench supplement (fillseq/readmissing/deleterandom)",
      Bench_db.db_supplement);
    ("ablation", "RedoOpt optimization ablation", Bench_ablation.run);
    ("latency", "Bechamel single-op latency", Bench_latency.run);
    ("shapes", "assert the paper's qualitative claims", Bench_shapes.run);
  ]

let () =
  let quick = ref true in
  let selected = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--full" -> quick := false
        | "--quick" -> quick := true
        | "all" -> selected := List.map (fun (n, _, _) -> n) experiments
        | name when List.exists (fun (n, _, _) -> n = name) experiments ->
            selected := !selected @ [ name ]
        | other ->
            Printf.eprintf "unknown experiment %S; available: %s\n" other
              (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
            exit 2)
    Sys.argv;
  let selected =
    if !selected = [] then List.map (fun (n, _, _) -> n) experiments
    else !selected
  in
  Printf.printf
    "Persistent Memory and the Rise of Universal Constructions — benchmark \
     harness\nmode: %s | experiments: %s\n"
    (if !quick then "quick (use --full for larger runs)" else "full")
    (String.concat ", " selected);
  (* Device model: give each written-back line an Optane-like latency so
     flush counts translate into time (see Pmem.set_default_flush_cost). *)
  Pmem.set_default_flush_cost 150;
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      let _, _, f = List.find (fun (n, _, _) -> n = name) experiments in
      f ~quick:!quick ())
    selected;
  Printf.printf "\ntotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
