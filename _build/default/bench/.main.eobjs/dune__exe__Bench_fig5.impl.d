bench/bench_fig5.ml: Bench_util Int64 List Pds Pmem Printf Ptm
