bench/main.ml: Array Bench_ablation Bench_db Bench_fig1 Bench_fig4 Bench_fig5 Bench_fig6 Bench_latency Bench_shapes Bench_tab1 List Pmem Printf String Sys Unix
