bench/bench_tab1.ml: Array Bench_util Int64 List Pds Printf Ptm Random
