bench/bench_ablation.ml: Array Bench_util Int64 List Pds Printf Ptm Random
