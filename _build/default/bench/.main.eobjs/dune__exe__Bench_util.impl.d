bench/bench_util.ml: Domain List Pmem Printf Ptm String Unix
