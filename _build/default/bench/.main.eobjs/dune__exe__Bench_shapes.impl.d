bench/bench_shapes.ml: Atomic Bench_util Domain Int64 Kv List Palloc Pds Pmem Printf Ptm Unix
