bench/bench_fig4.ml: Array Bench_util Int64 List Palloc Printf Ptm Random
