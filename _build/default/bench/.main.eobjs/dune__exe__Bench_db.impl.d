bench/bench_db.ml: Bench_util Kv List Pmem Printf
