bench/main.mli:
