bench/bench_fig6.ml: Array Bench_util Int64 List Pds Printf Ptm Random
