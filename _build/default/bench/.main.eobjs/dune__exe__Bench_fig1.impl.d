bench/bench_fig1.ml: Array Bench_util Int64 List Palloc Pmem Printf Ptm
