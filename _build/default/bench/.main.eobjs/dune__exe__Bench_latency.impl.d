bench/bench_latency.ml: Analyze Bechamel Bench_util Benchmark Hashtbl Instance List Measure Palloc Printf Ptm Staged String Test Time Toolkit
