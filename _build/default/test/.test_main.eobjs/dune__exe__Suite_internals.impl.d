test/suite_internals.ml: Alcotest Atomic Domain Hashtbl Int64 List Option Ptm QCheck QCheck_alcotest Sync_prims Unix
