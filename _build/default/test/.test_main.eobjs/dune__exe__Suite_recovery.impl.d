test/suite_recovery.ml: Alcotest Int64 List Pds Printf Ptm Random Set
