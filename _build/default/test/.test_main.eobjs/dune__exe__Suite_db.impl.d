test/suite_db.ml: Alcotest Atomic Domain Gen Hashtbl Kv List Printf QCheck QCheck_alcotest Random
