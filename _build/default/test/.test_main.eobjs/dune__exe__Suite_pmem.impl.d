test/suite_pmem.ml: Alcotest Array Format Hashtbl Int64 List Pmem QCheck QCheck_alcotest
