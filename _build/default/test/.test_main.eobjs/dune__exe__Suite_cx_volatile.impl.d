test/suite_cx_volatile.ml: Alcotest Atomic Domain Fun Int64 List Ptm QCheck QCheck_alcotest
