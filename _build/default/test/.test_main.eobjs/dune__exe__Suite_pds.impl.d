test/suite_pds.ml: Alcotest Atomic Domain Int64 List Pds Pmem Printf Ptm QCheck QCheck_alcotest Random Set
