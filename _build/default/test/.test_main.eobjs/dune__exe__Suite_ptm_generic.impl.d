test/suite_ptm_generic.ml: Alcotest Atomic Domain Fun Int64 List Palloc Printf Ptm QCheck QCheck_alcotest Random
