test/suite_multi.ml: Alcotest Domain Int64 List Palloc Pds Printf Ptm Random
