test/suite_palloc.ml: Alcotest Array Hashtbl Int64 List Palloc QCheck QCheck_alcotest
