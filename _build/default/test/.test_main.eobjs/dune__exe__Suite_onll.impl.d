test/suite_onll.ml: Alcotest Array Domain Int64 List Palloc Pmem Ptm
