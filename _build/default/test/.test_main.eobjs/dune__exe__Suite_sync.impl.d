test/suite_sync.ml: Alcotest Array Domain Fun List QCheck QCheck_alcotest Sync_prims
