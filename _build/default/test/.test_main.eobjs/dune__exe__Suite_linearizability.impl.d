test/suite_linearizability.ml: Alcotest Array Atomic Domain Int64 List Palloc Pds Ptm
