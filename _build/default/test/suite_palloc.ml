(* Tests for the persistent allocator, run against a plain in-memory word
   array (the allocator only sees get/set callbacks, so any backing works). *)

let mk_mem words =
  let a = Array.make words 0L in
  ( { Palloc.get = (fun i -> a.(i)); set = (fun i v -> a.(i) <- v) },
    a )

let formatted ?(words = 4096) () =
  let mem, a = mk_mem words in
  Palloc.format mem ~words;
  (mem, a)

let test_layout_constants () =
  Alcotest.(check int) "root 1" 1 (Palloc.root_addr 1);
  Alcotest.(check int) "root 63" 63 (Palloc.root_addr Palloc.root_slots);
  Alcotest.check_raises "root 0 invalid" (Invalid_argument "Palloc.root_addr")
    (fun () -> ignore (Palloc.root_addr 0));
  Alcotest.(check bool) "heap after meta" true (Palloc.heap_base > 64);
  Alcotest.(check int) "heap line aligned" 0 (Palloc.heap_base mod 8)

let test_block_words_powers_of_two () =
  Alcotest.(check int) "1 word -> 2" 2 (Palloc.block_words 1);
  Alcotest.(check int) "2 words -> 4" 4 (Palloc.block_words 2);
  Alcotest.(check int) "3 words -> 4" 4 (Palloc.block_words 3);
  Alcotest.(check int) "7 words -> 8" 8 (Palloc.block_words 7);
  Alcotest.(check int) "8 words -> 16" 16 (Palloc.block_words 8)

let test_alloc_returns_heap_addresses () =
  let mem, _ = formatted () in
  let a = Palloc.alloc mem 4 in
  Alcotest.(check bool) "in heap" true (a > Palloc.heap_base);
  let b = Palloc.alloc mem 4 in
  Alcotest.(check bool) "distinct" true (a <> b)

let test_blocks_do_not_overlap () =
  let mem, _ = formatted () in
  let blocks = List.init 50 (fun i -> (Palloc.alloc mem (1 + (i mod 9)), 1 + (i mod 9))) in
  (* Write a distinct pattern in each block, then verify none was clobbered. *)
  List.iteri
    (fun i (addr, n) ->
      for j = 0 to n - 1 do
        mem.Palloc.set (addr + j) (Int64.of_int ((i * 100) + j))
      done)
    blocks;
  List.iteri
    (fun i (addr, n) ->
      for j = 0 to n - 1 do
        Alcotest.(check int64)
          "block intact"
          (Int64.of_int ((i * 100) + j))
          (mem.Palloc.get (addr + j))
      done)
    blocks

let test_free_then_reuse () =
  let mem, _ = formatted () in
  let a = Palloc.alloc mem 4 in
  Palloc.dealloc mem a;
  let b = Palloc.alloc mem 4 in
  Alcotest.(check int) "same class block reused" a b

let test_free_lists_are_per_class () =
  let mem, _ = formatted () in
  let a = Palloc.alloc mem 1 in
  Palloc.dealloc mem a;
  let b = Palloc.alloc mem 100 in
  Alcotest.(check bool) "different class, no reuse" true (a <> b)

let test_live_words_accounting () =
  let mem, _ = formatted () in
  Alcotest.(check int) "starts at zero" 0 (Palloc.live_words mem);
  let a = Palloc.alloc mem 3 in
  Alcotest.(check int) "one block" (Palloc.block_words 3) (Palloc.live_words mem);
  let b = Palloc.alloc mem 10 in
  Alcotest.(check int) "two blocks"
    (Palloc.block_words 3 + Palloc.block_words 10)
    (Palloc.live_words mem);
  Palloc.dealloc mem a;
  Palloc.dealloc mem b;
  Alcotest.(check int) "back to zero" 0 (Palloc.live_words mem)

let test_used_words_high_water () =
  let mem, _ = formatted () in
  let a = Palloc.alloc mem 4 in
  let hw = Palloc.used_words mem in
  Palloc.dealloc mem a;
  Alcotest.(check int) "free does not shrink high-water" hw
    (Palloc.used_words mem);
  let _ = Palloc.alloc mem 4 in
  Alcotest.(check int) "reuse does not grow it" hw (Palloc.used_words mem)

let test_out_of_memory () =
  let mem, _ = formatted ~words:(Palloc.heap_base + 16) () in
  let _ = Palloc.alloc mem 7 in
  let _ = Palloc.alloc mem 7 in
  Alcotest.check_raises "heap exhausted" Palloc.Out_of_memory (fun () ->
      ignore (Palloc.alloc mem 7))

let test_double_free_detected () =
  let mem, _ = formatted () in
  let a = Palloc.alloc mem 4 in
  Palloc.dealloc mem a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Palloc.dealloc: corrupt or double-freed block")
    (fun () -> Palloc.dealloc mem a)

let test_invalid_args () =
  let mem, _ = formatted () in
  Alcotest.check_raises "alloc 0" (Invalid_argument "Palloc.alloc") (fun () ->
      ignore (Palloc.alloc mem 0));
  Alcotest.check_raises "dealloc below heap"
    (Invalid_argument "Palloc.dealloc: bad address") (fun () ->
      Palloc.dealloc mem 5)

let qcheck_alloc_free_consistency =
  (* Random alloc/free interleavings: blocks never overlap, contents are
     preserved, and freeing everything returns live_words to zero. *)
  QCheck.Test.make ~name:"random alloc/free keeps blocks disjoint" ~count:100
    QCheck.(list (int_bound 20))
    (fun sizes ->
      let mem, _ = mk_mem 65536 in
      Palloc.format mem ~words:65536;
      let live = Hashtbl.create 16 in
      let next_tag = ref 1 in
      let check_all () =
        Hashtbl.iter
          (fun addr (n, tag) ->
            for j = 0 to n - 1 do
              if mem.Palloc.get (addr + j) <> Int64.of_int (tag + j) then
                QCheck.Test.fail_reportf "block %d corrupted" addr
            done)
          live
      in
      List.iteri
        (fun i sz ->
          if i mod 3 = 2 && Hashtbl.length live > 0 then begin
            (* free an arbitrary live block *)
            let addr, _ = Hashtbl.fold (fun a v _ -> (a, v)) live (0, (0, 0)) in
            Palloc.dealloc mem addr;
            Hashtbl.remove live addr
          end
          else begin
            let n = 1 + sz in
            let addr = Palloc.alloc mem n in
            let tag = !next_tag in
            next_tag := tag + 1000;
            for j = 0 to n - 1 do
              mem.Palloc.set (addr + j) (Int64.of_int (tag + j))
            done;
            Hashtbl.replace live addr (n, tag)
          end;
          check_all ())
        sizes;
      Hashtbl.iter (fun addr _ -> Palloc.dealloc mem addr) live;
      Palloc.live_words mem = 0)

let suites =
  [
    ( "palloc",
      [
        Alcotest.test_case "layout constants" `Quick test_layout_constants;
        Alcotest.test_case "power-of-two blocks" `Quick
          test_block_words_powers_of_two;
        Alcotest.test_case "alloc in heap" `Quick test_alloc_returns_heap_addresses;
        Alcotest.test_case "blocks disjoint" `Quick test_blocks_do_not_overlap;
        Alcotest.test_case "free then reuse" `Quick test_free_then_reuse;
        Alcotest.test_case "per-class free lists" `Quick
          test_free_lists_are_per_class;
        Alcotest.test_case "live words accounting" `Quick
          test_live_words_accounting;
        Alcotest.test_case "high-water mark" `Quick test_used_words_high_water;
        Alcotest.test_case "out of memory" `Quick test_out_of_memory;
        Alcotest.test_case "double free detected" `Quick test_double_free_detected;
        Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
        QCheck_alcotest.to_alcotest qcheck_alloc_free_consistency;
      ] );
  ]
