(* Tests for the persistent data structures, run over several PTMs.
   Each set implementation is validated against Stdlib.Set as a model,
   including across crashes, resizes/rebalancing, and concurrent use. *)

module I64Set = Set.Make (Int64)

let i64s l = List.map Int64.of_int l

module Make_set_suite
    (P : Ptm.Ptm_intf.S) (S : sig
      val kind : string
      val init : P.t -> tid:int -> slot:int -> unit
      val add : P.t -> tid:int -> slot:int -> int64 -> bool
      val remove : P.t -> tid:int -> slot:int -> int64 -> bool
      val contains : P.t -> tid:int -> slot:int -> int64 -> bool
      val cardinal : P.t -> tid:int -> slot:int -> int
      val check : P.t -> tid:int -> slot:int -> bool
    end) =
struct
  let mk ?(words = 1 lsl 16) () =
    let p = P.create ~num_threads:4 ~words () in
    S.init p ~tid:0 ~slot:1;
    p

  let test_empty () =
    let p = mk () in
    Alcotest.(check int) "empty" 0 (S.cardinal p ~tid:0 ~slot:1);
    Alcotest.(check bool) "no member" false (S.contains p ~tid:0 ~slot:1 5L)

  let test_add_contains () =
    let p = mk () in
    Alcotest.(check bool) "add new" true (S.add p ~tid:0 ~slot:1 5L);
    Alcotest.(check bool) "member" true (S.contains p ~tid:0 ~slot:1 5L);
    Alcotest.(check bool) "add dup" false (S.add p ~tid:0 ~slot:1 5L);
    Alcotest.(check int) "one element" 1 (S.cardinal p ~tid:0 ~slot:1)

  let test_remove () =
    let p = mk () in
    ignore (S.add p ~tid:0 ~slot:1 5L);
    Alcotest.(check bool) "remove absent" false (S.remove p ~tid:0 ~slot:1 6L);
    Alcotest.(check bool) "remove present" true (S.remove p ~tid:0 ~slot:1 5L);
    Alcotest.(check bool) "gone" false (S.contains p ~tid:0 ~slot:1 5L);
    Alcotest.(check int) "empty again" 0 (S.cardinal p ~tid:0 ~slot:1)

  let test_many_keys () =
    let p = mk () in
    let keys = i64s (List.init 200 (fun i -> (i * 37) mod 1000)) in
    let model = ref I64Set.empty in
    List.iter
      (fun k ->
        let added = S.add p ~tid:0 ~slot:1 k in
        Alcotest.(check bool) "add matches model" (not (I64Set.mem k !model)) added;
        model := I64Set.add k !model)
      keys;
    Alcotest.(check int) "cardinal" (I64Set.cardinal !model)
      (S.cardinal p ~tid:0 ~slot:1);
    Alcotest.(check bool) "invariants" true (S.check p ~tid:0 ~slot:1);
    I64Set.iter
      (fun k ->
        Alcotest.(check bool) "member" true (S.contains p ~tid:0 ~slot:1 k))
      !model

  let test_crash_preserves_contents () =
    let p = mk () in
    let keys = i64s (List.init 100 (fun i -> i * 3)) in
    List.iter (fun k -> ignore (S.add p ~tid:0 ~slot:1 k)) keys;
    List.iter
      (fun k -> if Int64.to_int k mod 2 = 0 then ignore (S.remove p ~tid:0 ~slot:1 k))
      keys;
    P.crash_and_recover p;
    Alcotest.(check bool) "invariants after crash" true (S.check p ~tid:0 ~slot:1);
    List.iter
      (fun k ->
        let expect = Int64.to_int k mod 2 <> 0 in
        Alcotest.(check bool) "durable membership" expect
          (S.contains p ~tid:0 ~slot:1 k))
      keys;
    (* still usable *)
    ignore (S.add p ~tid:0 ~slot:1 99999L);
    Alcotest.(check bool) "usable after recovery" true
      (S.contains p ~tid:0 ~slot:1 99999L)

  let test_crash_with_evictions () =
    List.iter
      (fun seed ->
        let p = mk () in
        for i = 0 to 49 do
          ignore (S.add p ~tid:0 ~slot:1 (Int64.of_int i))
        done;
        P.crash_with_evictions p ~seed ~prob:0.4;
        Alcotest.(check bool) "invariants under evictions" true
          (S.check p ~tid:0 ~slot:1);
        for i = 0 to 49 do
          Alcotest.(check bool) "durable" true
            (S.contains p ~tid:0 ~slot:1 (Int64.of_int i))
        done)
      [ 11; 12; 13 ]

  let test_concurrent_disjoint_updates () =
    let p = mk ~words:(1 lsl 17) () in
    let nthreads = 3 in
    let per = 60 in
    let ds =
      List.init nthreads (fun tid ->
          Domain.spawn (fun () ->
              for i = 0 to per - 1 do
                ignore
                  (S.add p ~tid ~slot:1 (Int64.of_int ((tid * 10_000) + i)))
              done))
    in
    List.iter Domain.join ds;
    Alcotest.(check int) "all inserted" (nthreads * per)
      (S.cardinal p ~tid:0 ~slot:1);
    Alcotest.(check bool) "invariants" true (S.check p ~tid:0 ~slot:1);
    for tid = 0 to nthreads - 1 do
      for i = 0 to per - 1 do
        Alcotest.(check bool) "present" true
          (S.contains p ~tid:0 ~slot:1 (Int64.of_int ((tid * 10_000) + i)))
      done
    done

  let test_concurrent_mixed_then_crash () =
    let p = mk ~words:(1 lsl 17) () in
    for i = 0 to 99 do
      ignore (S.add p ~tid:0 ~slot:1 (Int64.of_int i))
    done;
    (* The paper's update workload: remove a key then re-insert it. *)
    let ds =
      List.init 3 (fun tid ->
          Domain.spawn (fun () ->
              let st = Random.State.make [| tid + 5 |] in
              for _ = 1 to 60 do
                let k = Int64.of_int (Random.State.int st 100) in
                if S.remove p ~tid ~slot:1 k then
                  ignore (S.add p ~tid ~slot:1 k)
              done))
    in
    List.iter Domain.join ds;
    P.crash_and_recover p;
    Alcotest.(check bool) "invariants" true (S.check p ~tid:0 ~slot:1);
    Alcotest.(check int) "multiset preserved" 100 (S.cardinal p ~tid:0 ~slot:1)

  let test_adversarial_patterns () =
    (* ascending, descending and interleaved insert/delete patterns stress
       rebalancing/resizing paths that random keys rarely exercise *)
    let check_pattern label keys removals =
      let p = mk ~words:(1 lsl 17) () in
      List.iter (fun k -> ignore (S.add p ~tid:0 ~slot:1 k)) keys;
      Alcotest.(check bool) (label ^ ": invariants after inserts") true
        (S.check p ~tid:0 ~slot:1);
      List.iter (fun k -> ignore (S.remove p ~tid:0 ~slot:1 k)) removals;
      Alcotest.(check bool) (label ^ ": invariants after removals") true
        (S.check p ~tid:0 ~slot:1);
      Alcotest.(check int)
        (label ^ ": cardinal")
        (List.length keys - List.length removals)
        (S.cardinal p ~tid:0 ~slot:1)
    in
    let asc = List.init 300 (fun i -> Int64.of_int i) in
    let desc = List.rev asc in
    check_pattern "ascending" asc [];
    check_pattern "descending" desc [];
    check_pattern "ascending then remove evens" asc
      (List.filter (fun k -> Int64.rem k 2L = 0L) asc);
    check_pattern "descending then remove front half" desc
      (List.filteri (fun i _ -> i < 150) asc)

  let qcheck_against_model =
    QCheck.Test.make
      ~name:(Printf.sprintf "%s/%s matches Set model" S.kind P.name)
      ~count:30
      QCheck.(list (pair bool (int_bound 60)))
    @@ fun ops ->
    let p = mk () in
    let model = ref I64Set.empty in
    List.iter
      (fun (is_add, k) ->
        let k = Int64.of_int k in
        if is_add then begin
          let r = S.add p ~tid:0 ~slot:1 k in
          if r <> not (I64Set.mem k !model) then
            QCheck.Test.fail_reportf "add %Ld diverged" k;
          model := I64Set.add k !model
        end
        else begin
          let r = S.remove p ~tid:0 ~slot:1 k in
          if r <> I64Set.mem k !model then
            QCheck.Test.fail_reportf "remove %Ld diverged" k;
          model := I64Set.remove k !model
        end)
      ops;
    S.check p ~tid:0 ~slot:1
    && S.cardinal p ~tid:0 ~slot:1 = I64Set.cardinal !model
    && I64Set.for_all (fun k -> S.contains p ~tid:0 ~slot:1 k) !model

  let suites =
    [
      ( Printf.sprintf "%s[%s]" S.kind P.name,
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/contains" `Quick test_add_contains;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "many keys" `Quick test_many_keys;
          Alcotest.test_case "adversarial patterns" `Quick
            test_adversarial_patterns;
          Alcotest.test_case "crash preserves contents" `Quick
            test_crash_preserves_contents;
          Alcotest.test_case "crash with evictions" `Quick
            test_crash_with_evictions;
          Alcotest.test_case "concurrent disjoint" `Slow
            test_concurrent_disjoint_updates;
          Alcotest.test_case "concurrent mixed + crash" `Slow
            test_concurrent_mixed_then_crash;
          QCheck_alcotest.to_alcotest qcheck_against_model;
        ] );
    ]
end

(* Adapters exposing each structure through the uniform signature. *)
module Set_adapters (P : Ptm.Ptm_intf.S) = struct
  module L = Pds.List_set.Make (P)
  module T = Pds.Rbtree_set.Make (P)
  module H = Pds.Hash_set.Make (P)

  module List_set = struct
    let kind = "list_set"
    let init = L.init
    let add = L.add
    let remove = L.remove
    let contains = L.contains
    let cardinal = L.cardinal

    let check p ~tid ~slot =
      (* sortedness invariant *)
      let rec sorted = function
        | a :: (b :: _ as rest) -> Int64.compare a b < 0 && sorted rest
        | _ -> true
      in
      sorted (L.elements p ~tid ~slot)
  end

  module Rbtree_set = struct
    let kind = "rbtree_set"
    let init = T.init
    let add = T.add
    let remove = T.remove
    let contains = T.contains
    let cardinal = T.cardinal
    let check = T.check_invariants
  end

  module Hash_set = struct
    let kind = "hash_set"
    let init p ~tid ~slot = H.init ~initial_buckets:4 p ~tid ~slot
    let add = H.add
    let remove = H.remove
    let contains = H.contains
    let cardinal = H.cardinal

    let check p ~tid ~slot =
      (* size field consistent with a full fold *)
      H.fold p ~tid ~slot ~init:0 (fun acc _ -> acc + 1) = H.cardinal p ~tid ~slot
  end
end

module Queue_suite (P : Ptm.Ptm_intf.S) = struct
  module Q = Pds.Pqueue.Make (P)

  let mk () =
    let p = P.create ~num_threads:4 ~words:(1 lsl 16) () in
    Q.init p ~tid:0 ~slot:1;
    p

  let test_fifo () =
    let p = mk () in
    Alcotest.(check (option int64)) "empty deq" None (Q.dequeue p ~tid:0 ~slot:1);
    Q.enqueue p ~tid:0 ~slot:1 1L;
    Q.enqueue p ~tid:0 ~slot:1 2L;
    Q.enqueue p ~tid:0 ~slot:1 3L;
    Alcotest.(check (option int64)) "peek" (Some 1L) (Q.peek p ~tid:0 ~slot:1);
    Alcotest.(check int) "length" 3 (Q.length p ~tid:0 ~slot:1);
    Alcotest.(check (option int64)) "deq 1" (Some 1L) (Q.dequeue p ~tid:0 ~slot:1);
    Alcotest.(check (option int64)) "deq 2" (Some 2L) (Q.dequeue p ~tid:0 ~slot:1);
    Alcotest.(check (option int64)) "deq 3" (Some 3L) (Q.dequeue p ~tid:0 ~slot:1);
    Alcotest.(check (option int64)) "drained" None (Q.dequeue p ~tid:0 ~slot:1)

  let test_crash () =
    let p = mk () in
    for i = 1 to 50 do
      Q.enqueue p ~tid:0 ~slot:1 (Int64.of_int i)
    done;
    for _ = 1 to 20 do
      ignore (Q.dequeue p ~tid:0 ~slot:1)
    done;
    P.crash_and_recover p;
    Alcotest.(check int) "length survives" 30 (Q.length p ~tid:0 ~slot:1);
    Alcotest.(check (option int64)) "order survives" (Some 21L)
      (Q.dequeue p ~tid:0 ~slot:1)

  let test_concurrent_enq_deq () =
    (* The Figure 5 workload: each thread alternates enqueue and dequeue;
       the multiset of surviving elements must be consistent. *)
    let p = mk () in
    for i = 1 to 100 do
      Q.enqueue p ~tid:0 ~slot:1 (Int64.of_int i)
    done;
    let deq_count = Atomic.make 0 in
    let enq_count = Atomic.make 0 in
    let ds =
      List.init 3 (fun tid ->
          Domain.spawn (fun () ->
              for i = 1 to 50 do
                Q.enqueue p ~tid ~slot:1 (Int64.of_int ((tid * 1000) + i));
                Atomic.incr enq_count;
                if Q.dequeue p ~tid ~slot:1 <> None then Atomic.incr deq_count
              done))
    in
    List.iter Domain.join ds;
    P.crash_and_recover p;
    Alcotest.(check int) "conservation"
      (100 + Atomic.get enq_count - Atomic.get deq_count)
      (Q.length p ~tid:0 ~slot:1)

  let suites =
    [
      ( "pqueue[" ^ P.name ^ "]",
        [
          Alcotest.test_case "fifo" `Quick test_fifo;
          Alcotest.test_case "crash" `Quick test_crash;
          Alcotest.test_case "concurrent enq/deq" `Slow test_concurrent_enq_deq;
        ] );
    ]
end

module Handmade_suite (Q : sig
  type t

  val name : string
  val create : num_threads:int -> words:int -> unit -> t
  val enqueue : t -> tid:int -> int64 -> unit
  val dequeue : t -> tid:int -> int64 option
  val length : t -> int
  val crash : t -> unit
  val recover : t -> unit
  val stats : t -> Pmem.Stats.snapshot

  exception Unrecoverable of string
end) =
struct
  let test_fifo () =
    let q = Q.create ~num_threads:2 ~words:4096 () in
    Q.enqueue q ~tid:0 1L;
    Q.enqueue q ~tid:0 2L;
    Alcotest.(check int) "length" 2 (Q.length q);
    Alcotest.(check (option int64)) "deq" (Some 1L) (Q.dequeue q ~tid:0);
    Alcotest.(check (option int64)) "deq" (Some 2L) (Q.dequeue q ~tid:0);
    Alcotest.(check (option int64)) "empty" None (Q.dequeue q ~tid:0)

  let test_fence_counts () =
    let q = Q.create ~num_threads:2 ~words:4096 () in
    let s0 = Q.stats q in
    Q.enqueue q ~tid:0 1L;
    let s1 = Q.stats q in
    ignore (Q.dequeue q ~tid:0);
    let s2 = Q.stats q in
    let enq_f = Pmem.Stats.fences (Pmem.Stats.diff s1 s0) in
    let deq_f = Pmem.Stats.fences (Pmem.Stats.diff s2 s1) in
    (* the published per-operation fence counts *)
    let expect_enq, expect_deq = if Q.name = "FHMP" then (2, 4) else (1, 2) in
    Alcotest.(check int) "enqueue fences" expect_enq enq_f;
    Alcotest.(check int) "dequeue fences" expect_deq deq_f

  let test_unrecoverable_after_crash () =
    let q = Q.create ~num_threads:2 ~words:4096 () in
    Q.enqueue q ~tid:0 1L;
    Q.crash q;
    Alcotest.(check bool) "recover refuses" true
      (match Q.recover q with
      | () -> false
      | exception Q.Unrecoverable _ -> true);
    Alcotest.(check bool) "operations refuse" true
      (match Q.enqueue q ~tid:0 2L with
      | () -> false
      | exception Q.Unrecoverable _ -> true)

  let test_concurrent () =
    let q = Q.create ~num_threads:4 ~words:(1 lsl 16) () in
    let deqs = Atomic.make 0 in
    let ds =
      List.init 3 (fun tid ->
          Domain.spawn (fun () ->
              for i = 1 to 100 do
                Q.enqueue q ~tid (Int64.of_int ((tid * 1000) + i));
                if Q.dequeue q ~tid <> None then Atomic.incr deqs
              done))
    in
    List.iter Domain.join ds;
    Alcotest.(check int) "conservation" (300 - Atomic.get deqs) (Q.length q)

  let suites =
    [
      ( "handmade[" ^ Q.name ^ "]",
        [
          Alcotest.test_case "fifo" `Quick test_fifo;
          Alcotest.test_case "fence counts" `Quick test_fence_counts;
          Alcotest.test_case "unrecoverable after crash" `Quick
            test_unrecoverable_after_crash;
          Alcotest.test_case "concurrent" `Slow test_concurrent;
        ] );
    ]
end
