(* Deep recovery tests: crash after every small batch of a long workload
   (not just once at the end), across a sweep of eviction probabilities,
   for each PTM.  Catches bugs that only appear after repeated
   crash-recover epochs (e.g. stale durable headers, state reuse across
   epochs). *)

module Make (P : Ptm.Ptm_intf.S) = struct
  module H = Pds.Hash_set.Make (P)
  module I64Set = Set.Make (Int64)

  let run_epochs ~epochs ~batch ~evict_prob ~seed =
    let p = P.create ~num_threads:2 ~words:(1 lsl 15) () in
    H.init p ~tid:0 ~slot:1;
    let model = ref I64Set.empty in
    let st = Random.State.make [| seed |] in
    for epoch = 1 to epochs do
      for _ = 1 to batch do
        let k = Int64.of_int (Random.State.int st 200) in
        if Random.State.bool st then begin
          ignore (H.add p ~tid:0 ~slot:1 k);
          model := I64Set.add k !model
        end
        else begin
          ignore (H.remove p ~tid:0 ~slot:1 k);
          model := I64Set.remove k !model
        end
      done;
      if evict_prob <= 0. then P.crash_and_recover p
      else P.crash_with_evictions p ~seed:(seed + epoch) ~prob:evict_prob;
      Alcotest.(check int)
        (Printf.sprintf "cardinality (epoch %d)" epoch)
        (I64Set.cardinal !model)
        (H.cardinal p ~tid:0 ~slot:1);
      I64Set.iter
        (fun k ->
          if not (H.contains p ~tid:0 ~slot:1 k) then
            Alcotest.failf "lost key %Ld in epoch %d" k epoch)
        !model
    done

  let test_many_epochs_strict () = run_epochs ~epochs:12 ~batch:25 ~evict_prob:0. ~seed:1

  let test_eviction_sweep () =
    List.iter
      (fun prob -> run_epochs ~epochs:5 ~batch:20 ~evict_prob:prob ~seed:99)
      [ 0.1; 0.3; 0.5; 0.7; 0.9; 1.0 ]

  let test_crash_immediately_after_create () =
    let p = P.create ~num_threads:2 ~words:(1 lsl 14) () in
    P.crash_and_recover p;
    H.init p ~tid:0 ~slot:1;
    ignore (H.add p ~tid:0 ~slot:1 1L);
    P.crash_and_recover p;
    Alcotest.(check bool) "usable after create-crash" true
      (H.contains p ~tid:0 ~slot:1 1L)

  let test_double_crash_without_ops () =
    let p = P.create ~num_threads:2 ~words:(1 lsl 14) () in
    H.init p ~tid:0 ~slot:1;
    ignore (H.add p ~tid:0 ~slot:1 5L);
    P.crash_and_recover p;
    P.crash_and_recover p;
    Alcotest.(check bool) "state stable across idle crashes" true
      (H.contains p ~tid:0 ~slot:1 5L)

  let suites =
    [
      ( "recovery[" ^ P.name ^ "]",
        [
          Alcotest.test_case "many epochs (strict)" `Quick test_many_epochs_strict;
          Alcotest.test_case "eviction probability sweep" `Slow
            test_eviction_sweep;
          Alcotest.test_case "crash right after create" `Quick
            test_crash_immediately_after_create;
          Alcotest.test_case "double crash, no ops" `Quick
            test_double_crash_without_ops;
        ] );
    ]
end
