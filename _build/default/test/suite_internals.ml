(* Unit tests for the PTM-internal building blocks: the SeqTidIdx control
   word, the physical write-set (redo/undo log), the breakdown profiler,
   and the rwlock upgrade path added for Redo-PTM. *)

module Seqtid = Ptm.Seqtid
module Wset = Ptm.Wset
module Breakdown = Ptm.Breakdown

(* ---- Seqtid ---- *)

let test_seqtid_roundtrip () =
  let t = Seqtid.pack ~seq:123456 ~tid:7 ~idx:31 in
  Alcotest.(check int) "seq" 123456 (Seqtid.seq t);
  Alcotest.(check int) "tid" 7 (Seqtid.tid t);
  Alcotest.(check int) "idx" 31 (Seqtid.idx t);
  let t64 = Seqtid.to_int64 t in
  Alcotest.(check int) "int64 roundtrip" t (Seqtid.of_int64 t64)

let test_seqtid_monotone_in_seq () =
  let a = Seqtid.pack ~seq:5 ~tid:255 ~idx:255 in
  let b = Seqtid.pack ~seq:6 ~tid:0 ~idx:0 in
  Alcotest.(check bool) "higher seq compares greater" true (b > a)

let qcheck_seqtid =
  QCheck.Test.make ~name:"seqtid pack/unpack" ~count:500
    QCheck.(triple (int_bound 1_000_000) (int_bound 255) (int_bound 255))
  @@ fun (seq, tid, idx) ->
  let t = Seqtid.pack ~seq ~tid ~idx in
  Seqtid.seq t = seq && Seqtid.tid t = tid && Seqtid.idx t = idx

(* ---- Wset ---- *)

let test_wset_append_mode_keeps_duplicates () =
  let w = Wset.create ~aggregate:false in
  Wset.record w 10 ~oldv:1L ~newv:2L;
  Wset.record w 10 ~oldv:2L ~newv:3L;
  Alcotest.(check int) "two entries" 2 (Wset.length w);
  Alcotest.(check (option int64)) "find returns latest" (Some 3L) (Wset.find w 10)

let test_wset_aggregate_mode_coalesces () =
  let w = Wset.create ~aggregate:true in
  Wset.record w 10 ~oldv:1L ~newv:2L;
  Wset.record w 10 ~oldv:2L ~newv:3L;
  Alcotest.(check int) "one entry" 1 (Wset.length w);
  let seen = ref [] in
  Wset.iter_entries w (fun addr ~oldv ~newv -> seen := (addr, oldv, newv) :: !seen);
  Alcotest.(check bool) "first old, last new" true (!seen = [ (10, 1L, 3L) ])

let test_wset_undo_order () =
  (* undo must revert repeated stores in reverse order *)
  let w = Wset.create ~aggregate:false in
  let mem = Hashtbl.create 4 in
  Hashtbl.replace mem 5 100L;
  let store addr v =
    let oldv = Option.value ~default:0L (Hashtbl.find_opt mem addr) in
    Wset.record w addr ~oldv ~newv:v;
    Hashtbl.replace mem addr v
  in
  store 5 200L;
  store 5 300L;
  Wset.iter_undo w (fun addr oldv -> Hashtbl.replace mem addr oldv);
  Alcotest.(check int64) "restored to first oldv" 100L (Hashtbl.find mem 5)

let test_wset_reset_is_cheap_and_complete () =
  let w = Wset.create ~aggregate:true in
  for i = 0 to 99 do
    Wset.record w i ~oldv:0L ~newv:(Int64.of_int i)
  done;
  Wset.reset w;
  Alcotest.(check int) "empty" 0 (Wset.length w);
  Alcotest.(check bool) "is_empty" true (Wset.is_empty w);
  Alcotest.(check (option int64)) "index cleared" None (Wset.find w 50);
  (* reuse after reset: stale index entries must not resurface *)
  Wset.record w 50 ~oldv:7L ~newv:8L;
  Alcotest.(check int) "fresh entry" 1 (Wset.length w);
  Alcotest.(check (option int64)) "fresh value" (Some 8L) (Wset.find w 50)

let test_wset_growth () =
  let w = Wset.create ~aggregate:true in
  for i = 0 to 9999 do
    Wset.record w i ~oldv:0L ~newv:(Int64.of_int (i * 2))
  done;
  Alcotest.(check int) "all distinct entries" 10000 (Wset.length w);
  Alcotest.(check (option int64)) "lookup after growth" (Some 4444L)
    (Wset.find w 2222)

let qcheck_wset_redo_matches_model =
  QCheck.Test.make ~name:"wset redo replay = final state" ~count:200
    QCheck.(pair bool (list (pair (int_bound 30) (int_bound 1000))))
  @@ fun (aggregate, stores) ->
  let w = Wset.create ~aggregate in
  let model = Hashtbl.create 16 in
  List.iter
    (fun (addr, v) ->
      let v = Int64.of_int v in
      let oldv = Option.value ~default:0L (Hashtbl.find_opt model addr) in
      Wset.record w addr ~oldv ~newv:v;
      Hashtbl.replace model addr v)
    stores;
  let replay = Hashtbl.create 16 in
  Wset.iter_redo w (fun addr v -> Hashtbl.replace replay addr v);
  Hashtbl.fold (fun k v acc -> acc && Hashtbl.find_opt replay k = Some v) model true

(* ---- Breakdown ---- *)

let test_breakdown_disabled_is_passthrough () =
  let bd = Breakdown.create ~num_threads:2 in
  let r = Breakdown.timed bd ~tid:0 Breakdown.Apply (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 r;
  let s = Breakdown.snapshot bd in
  Alcotest.(check int) "nothing recorded" 0 s.Breakdown.update_txs

let test_breakdown_accumulates () =
  let bd = Breakdown.create ~num_threads:2 in
  Breakdown.enable bd true;
  ignore (Breakdown.timed bd ~tid:0 Breakdown.Flush (fun () -> Unix.sleepf 0.01));
  Breakdown.add_total bd ~tid:0 0.02;
  Breakdown.add_total bd ~tid:1 0.02;
  let s = Breakdown.snapshot bd in
  Alcotest.(check int) "two txs" 2 s.Breakdown.update_txs;
  Alcotest.(check bool) "flush fraction > 0" true
    (Breakdown.fraction s "flush" > 0.1);
  Alcotest.(check bool) "avg us sensible" true
    (Breakdown.avg_us s > 1_000. && Breakdown.avg_us s < 1_000_000.);
  Breakdown.reset bd;
  Alcotest.(check int) "reset" 0 (Breakdown.snapshot bd).Breakdown.update_txs

(* ---- Rwlock upgrade ---- *)

let test_rwlock_upgrade_after_downgrade () =
  let l = Sync_prims.Rwlock.create () in
  assert (Sync_prims.Rwlock.exclusive_try_lock l ~tid:0);
  Sync_prims.Rwlock.downgrade l ~tid:0;
  Alcotest.(check bool) "reader during downgrade" true
    (Sync_prims.Rwlock.shared_try_lock l ~tid:1);
  Sync_prims.Rwlock.shared_unlock l ~tid:1;
  Sync_prims.Rwlock.upgrade l ~tid:0;
  Alcotest.(check bool) "reader barred after upgrade" false
    (Sync_prims.Rwlock.shared_try_lock l ~tid:1);
  Sync_prims.Rwlock.exclusive_unlock l ~tid:0;
  Alcotest.(check bool) "free afterwards" true
    (Sync_prims.Rwlock.exclusive_try_lock l ~tid:1);
  Sync_prims.Rwlock.exclusive_unlock l ~tid:1

let test_rwlock_upgrade_drains_readers () =
  let l = Sync_prims.Rwlock.create () in
  assert (Sync_prims.Rwlock.exclusive_try_lock l ~tid:0);
  Sync_prims.Rwlock.downgrade l ~tid:0;
  assert (Sync_prims.Rwlock.shared_try_lock l ~tid:1);
  let upgraded = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Sync_prims.Rwlock.upgrade l ~tid:0;
        Atomic.set upgraded true)
  in
  Unix.sleepf 0.02;
  Alcotest.(check bool) "upgrade waits for reader" false (Atomic.get upgraded);
  Sync_prims.Rwlock.shared_unlock l ~tid:1;
  Domain.join d;
  Alcotest.(check bool) "upgrade completed after drain" true (Atomic.get upgraded);
  Sync_prims.Rwlock.exclusive_unlock l ~tid:0

let suites =
  [
    ( "seqtid",
      [
        Alcotest.test_case "roundtrip" `Quick test_seqtid_roundtrip;
        Alcotest.test_case "monotone" `Quick test_seqtid_monotone_in_seq;
        QCheck_alcotest.to_alcotest qcheck_seqtid;
      ] );
    ( "wset",
      [
        Alcotest.test_case "append keeps duplicates" `Quick
          test_wset_append_mode_keeps_duplicates;
        Alcotest.test_case "aggregate coalesces" `Quick
          test_wset_aggregate_mode_coalesces;
        Alcotest.test_case "undo order" `Quick test_wset_undo_order;
        Alcotest.test_case "O(1) reset" `Quick test_wset_reset_is_cheap_and_complete;
        Alcotest.test_case "growth" `Quick test_wset_growth;
        QCheck_alcotest.to_alcotest qcheck_wset_redo_matches_model;
      ] );
    ( "breakdown",
      [
        Alcotest.test_case "disabled passthrough" `Quick
          test_breakdown_disabled_is_passthrough;
        Alcotest.test_case "accumulates" `Quick test_breakdown_accumulates;
      ] );
    ( "rwlock-upgrade",
      [
        Alcotest.test_case "upgrade after downgrade" `Quick
          test_rwlock_upgrade_after_downgrade;
        Alcotest.test_case "upgrade drains readers" `Slow
          test_rwlock_upgrade_drains_readers;
      ] );
  ]
