(* Generic conformance suite run against every PTM: transactional semantics,
   durability across crashes (strict and with random cache evictions),
   allocator integration, and multi-domain consistency.  This is the
   executable form of the paper's durable-linearizability claim: every
   operation that returned before a crash is visible after recovery. *)

module Make (P : Ptm.Ptm_intf.S) = struct
  let root1 = Palloc.root_addr 1
  let root2 = Palloc.root_addr 2

  let mk ?(num_threads = 4) ?(words = 1 lsl 14) () =
    P.create ~num_threads ~words ()

  let incr_tx tx =
    let v = Int64.add (P.get tx root1) 1L in
    P.set tx root1 v;
    v

  let test_initial_state () =
    let t = mk () in
    Alcotest.(check int64) "root starts 0" 0L (P.read_only t ~tid:0 (fun tx -> P.get tx root1))

  let test_update_visible () =
    let t = mk () in
    let r = P.update t ~tid:0 incr_tx in
    Alcotest.(check int64) "update result" 1L r;
    Alcotest.(check int64) "visible to reads" 1L
      (P.read_only t ~tid:1 (fun tx -> P.get tx root1))

  let test_read_your_writes () =
    let t = mk () in
    let r =
      P.update t ~tid:0 (fun tx ->
          P.set tx root1 7L;
          let a = P.get tx root1 in
          P.set tx root1 9L;
          let b = P.get tx root1 in
          Int64.add a b)
    in
    Alcotest.(check int64) "tx sees own writes" 16L r;
    Alcotest.(check int64) "final value" 9L
      (P.read_only t ~tid:0 (fun tx -> P.get tx root1))

  let test_sequential_counter () =
    let t = mk () in
    for _ = 1 to 100 do
      ignore (P.update t ~tid:0 incr_tx)
    done;
    Alcotest.(check int64) "100 increments" 100L
      (P.read_only t ~tid:0 (fun tx -> P.get tx root1))

  let test_crash_durability () =
    let t = mk () in
    for _ = 1 to 50 do
      ignore (P.update t ~tid:0 incr_tx)
    done;
    P.crash_and_recover t;
    Alcotest.(check int64) "all committed updates survive" 50L
      (P.read_only t ~tid:0 (fun tx -> P.get tx root1));
    (* The instance stays usable after recovery. *)
    ignore (P.update t ~tid:0 incr_tx);
    Alcotest.(check int64) "still works" 51L
      (P.read_only t ~tid:0 (fun tx -> P.get tx root1))

  let test_crash_with_evictions_durability () =
    (* Random cache evictions at crash time must never corrupt committed
       state: completed transactions survive no matter which unflushed lines
       happened to reach PM. *)
    List.iter
      (fun seed ->
        let t = mk () in
        for _ = 1 to 30 do
          ignore (P.update t ~tid:0 incr_tx)
        done;
        P.crash_with_evictions t ~seed ~prob:0.5;
        Alcotest.(check int64)
          (Printf.sprintf "durable under evictions (seed %d)" seed)
          30L
          (P.read_only t ~tid:0 (fun tx -> P.get tx root1)))
      [ 1; 2; 3; 42; 1337 ]

  let test_repeated_crashes () =
    let t = mk () in
    for round = 1 to 5 do
      for _ = 1 to 10 do
        ignore (P.update t ~tid:0 incr_tx)
      done;
      P.crash_and_recover t;
      Alcotest.(check int64) "value after round"
        (Int64.of_int (10 * round))
        (P.read_only t ~tid:0 (fun tx -> P.get tx root1))
    done

  let test_alloc_roundtrip () =
    let t = mk () in
    ignore
      (P.update t ~tid:0 (fun tx ->
           let a = P.alloc tx 4 in
           for i = 0 to 3 do
             P.set tx (a + i) (Int64.of_int (10 + i))
           done;
           P.set tx root1 (Int64.of_int a);
           0L));
    P.crash_and_recover t;
    let sum =
      P.read_only t ~tid:0 (fun tx ->
          let a = Int64.to_int (P.get tx root1) in
          let s = ref 0L in
          for i = 0 to 3 do
            s := Int64.add !s (P.get tx (a + i))
          done;
          !s)
    in
    Alcotest.(check int64) "allocated block survives crash" 46L sum

  let test_linked_list_across_txs () =
    (* Build a persistent singly-linked list, one node per transaction;
       after a crash the full list must be reachable from the root. *)
    let t = mk () in
    let n = 64 in
    for i = 1 to n do
      ignore
        (P.update t ~tid:0 (fun tx ->
             let node = P.alloc tx 2 in
             P.set tx node (Int64.of_int i);
             P.set tx (node + 1) (P.get tx root1);
             P.set tx root1 (Int64.of_int node);
             0L))
    done;
    P.crash_and_recover t;
    let collected =
      P.read_only t ~tid:0 (fun tx ->
          let rec go acc addr =
            if addr = 0 then acc
            else
              go
                (Int64.to_int (P.get tx addr) :: acc)
                (Int64.to_int (P.get tx (addr + 1)))
          in
          Int64.of_int (List.length (go [] (Int64.to_int (P.get tx root1)))))
    in
    Alcotest.(check int64) "list intact after crash" (Int64.of_int n) collected

  let test_dealloc_and_reuse () =
    let t = mk () in
    let a =
      P.update t ~tid:0 (fun tx -> Int64.of_int (P.alloc tx 4))
    in
    ignore (P.update t ~tid:0 (fun tx -> P.dealloc tx (Int64.to_int a); 0L));
    let b = P.update t ~tid:0 (fun tx -> Int64.of_int (P.alloc tx 4)) in
    Alcotest.(check int64) "freed block is reused" a b

  let test_multi_word_invariant_with_crash () =
    (* Bank-transfer style: two roots whose sum must stay 1000 across
       transactional transfers and a crash at an arbitrary point. *)
    let t = mk () in
    ignore
      (P.update t ~tid:0 (fun tx ->
           P.set tx root1 600L;
           P.set tx root2 400L;
           0L));
    let st = Random.State.make [| 99 |] in
    for _ = 1 to 40 do
      let amount = Int64.of_int (Random.State.int st 100) in
      ignore
        (P.update t ~tid:0 (fun tx ->
             P.set tx root1 (Int64.sub (P.get tx root1) amount);
             P.set tx root2 (Int64.add (P.get tx root2) amount);
             0L))
    done;
    P.crash_and_recover t;
    let total =
      P.read_only t ~tid:0 (fun tx -> Int64.add (P.get tx root1) (P.get tx root2))
    in
    Alcotest.(check int64) "sum preserved" 1000L total

  let test_concurrent_counter () =
    let nthreads = 4 in
    let per_thread = 250 in
    let t = mk ~num_threads:nthreads () in
    let worker tid () =
      for _ = 1 to per_thread do
        ignore (P.update t ~tid incr_tx)
      done
    in
    let ds = List.init nthreads (fun tid -> Domain.spawn (worker tid)) in
    List.iter Domain.join ds;
    Alcotest.(check int64) "no lost increments"
      (Int64.of_int (nthreads * per_thread))
      (P.read_only t ~tid:0 (fun tx -> P.get tx root1))

  let test_concurrent_counter_then_crash () =
    let nthreads = 3 in
    let per_thread = 100 in
    let t = mk ~num_threads:nthreads () in
    let ds =
      List.init nthreads (fun tid ->
          Domain.spawn (fun () ->
              for _ = 1 to per_thread do
                ignore (P.update t ~tid incr_tx)
              done))
    in
    List.iter Domain.join ds;
    P.crash_and_recover t;
    Alcotest.(check int64) "all concurrent updates durable"
      (Int64.of_int (nthreads * per_thread))
      (P.read_only t ~tid:0 (fun tx -> P.get tx root1))

  let test_readers_see_monotone_counter () =
    let t = mk ~num_threads:4 () in
    let stop = Atomic.make false in
    let bad = Atomic.make false in
    let reader tid () =
      let last = ref 0L in
      while not (Atomic.get stop) do
        let v = P.read_only t ~tid (fun tx -> P.get tx root1) in
        if Int64.compare v !last < 0 then Atomic.set bad true;
        last := v
      done
    in
    let readers = [ Domain.spawn (reader 2); Domain.spawn (reader 3) ] in
    for _ = 1 to 300 do
      ignore (P.update t ~tid:0 incr_tx)
    done;
    Atomic.set stop true;
    List.iter Domain.join readers;
    Alcotest.(check bool) "reads never go backwards" false (Atomic.get bad)

  let test_concurrent_transfers_preserve_sum () =
    let nthreads = 3 in
    let t = mk ~num_threads:nthreads () in
    ignore (P.update t ~tid:0 (fun tx -> P.set tx root1 1000L; 0L));
    let ds =
      List.init nthreads (fun tid ->
          Domain.spawn (fun () ->
              let st = Random.State.make [| tid |] in
              for _ = 1 to 100 do
                let amount = Int64.of_int (Random.State.int st 10) in
                ignore
                  (P.update t ~tid (fun tx ->
                       P.set tx root1 (Int64.sub (P.get tx root1) amount);
                       P.set tx root2 (Int64.add (P.get tx root2) amount);
                       0L))
              done))
    in
    List.iter Domain.join ds;
    P.crash_and_recover t;
    let total =
      P.read_only t ~tid:0 (fun tx -> Int64.add (P.get tx root1) (P.get tx root2))
    in
    Alcotest.(check int64) "concurrent transfers keep the sum" 1000L total

  let qcheck_sps_invariant =
    (* The paper's SPS benchmark as a property: any sequence of transactional
       swaps over an array preserves the multiset of values, across a crash
       with random evictions. *)
    QCheck.Test.make ~name:(P.name ^ ": SPS swaps preserve array contents")
      ~count:20
      QCheck.(pair small_int (list (pair (int_bound 31) (int_bound 31))))
      (fun (seed, swaps) ->
        let t = mk () in
        let base =
          Int64.to_int
            (P.update t ~tid:0 (fun tx ->
                 let a = P.alloc tx 32 in
                 for i = 0 to 31 do
                   P.set tx (a + i) (Int64.of_int i)
                 done;
                 Int64.of_int a))
        in
        List.iter
          (fun (i, j) ->
            ignore
              (P.update t ~tid:0 (fun tx ->
                   let vi = P.get tx (base + i) and vj = P.get tx (base + j) in
                   P.set tx (base + i) vj;
                   P.set tx (base + j) vi;
                   0L)))
          swaps;
        P.crash_with_evictions t ~seed ~prob:0.3;
        let values =
          List.init 32 (fun i ->
              Int64.to_int (P.read_only t ~tid:0 (fun tx -> P.get tx (base + i))))
        in
        List.sort compare values = List.init 32 Fun.id)

  let suites =
    [
      ( "ptm:" ^ P.name,
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "update visible" `Quick test_update_visible;
          Alcotest.test_case "read your writes" `Quick test_read_your_writes;
          Alcotest.test_case "sequential counter" `Quick test_sequential_counter;
          Alcotest.test_case "crash durability" `Quick test_crash_durability;
          Alcotest.test_case "durability under evictions" `Quick
            test_crash_with_evictions_durability;
          Alcotest.test_case "repeated crashes" `Quick test_repeated_crashes;
          Alcotest.test_case "alloc roundtrip" `Quick test_alloc_roundtrip;
          Alcotest.test_case "linked list across txs" `Quick
            test_linked_list_across_txs;
          Alcotest.test_case "dealloc and reuse" `Quick test_dealloc_and_reuse;
          Alcotest.test_case "multi-word invariant + crash" `Quick
            test_multi_word_invariant_with_crash;
          Alcotest.test_case "concurrent counter" `Slow test_concurrent_counter;
          Alcotest.test_case "concurrent counter + crash" `Slow
            test_concurrent_counter_then_crash;
          Alcotest.test_case "monotone reads" `Slow
            test_readers_see_monotone_counter;
          Alcotest.test_case "concurrent transfers" `Slow
            test_concurrent_transfers_preserve_sum;
          QCheck_alcotest.to_alcotest qcheck_sps_invariant;
        ] );
    ]
end
