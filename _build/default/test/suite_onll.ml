(* Tests for the ONLL construction: registered logical operations, the
   single-fence update profile, fence-free reads, crash recovery from the
   logical log, and log checkpointing. *)

module O = Ptm.Onll

(* A counter object: slot 1 holds the value; ops registered by opcode. *)
let make ?(num_threads = 4) () =
  let t = O.create ~num_threads ~words:4096 () in
  let add =
    O.register t (fun tx args ->
        let v = Int64.add (O.get tx (Palloc.root_addr 1)) args.(0) in
        O.set tx (Palloc.root_addr 1) v;
        v)
  in
  let push =
    (* linked stack through the allocator, exercising alloc in replayed ops *)
    O.register t (fun tx args ->
        let n = O.alloc tx 2 in
        O.set tx n args.(0);
        O.set tx (n + 1) (O.get tx (Palloc.root_addr 2));
        O.set tx (Palloc.root_addr 2) (Int64.of_int n);
        0L)
  in
  (t, add, push)

let read_counter t = O.read_only t ~tid:0 (fun tx -> O.get tx (Palloc.root_addr 1))

let stack_elems t =
  let out = ref [] in
  ignore
    (O.read_only t ~tid:0 (fun tx ->
         let rec go acc addr =
           if addr = 0 then acc
           else go (O.get tx addr :: acc) (Int64.to_int (O.get tx (addr + 1)))
         in
         out := go [] (Int64.to_int (O.get tx (Palloc.root_addr 2)));
         0L));
  !out

let test_invoke_and_result () =
  let t, add, _ = make () in
  Alcotest.(check int64) "returns new value" 5L (O.invoke t ~tid:0 add [| 5L |]);
  Alcotest.(check int64) "accumulates" 8L (O.invoke t ~tid:0 add [| 3L |]);
  Alcotest.(check int64) "read sees it" 8L (read_counter t)

let test_unknown_opcode () =
  let t, _, _ = make () in
  Alcotest.check_raises "bad opcode" (Invalid_argument "Onll.invoke: unknown opcode")
    (fun () -> ignore (O.invoke t ~tid:0 99 [||]))

let test_crash_replays_log () =
  let t, add, push = make () in
  for i = 1 to 20 do
    ignore (O.invoke t ~tid:0 add [| Int64.of_int i |])
  done;
  List.iter (fun v -> ignore (O.invoke t ~tid:0 push [| v |])) [ 7L; 8L; 9L ];
  O.crash_and_recover t;
  Alcotest.(check int64) "counter replayed" 210L (read_counter t);
  Alcotest.(check (list int64)) "stack replayed (LIFO order preserved)"
    [ 7L; 8L; 9L ] (stack_elems t);
  (* usable after recovery *)
  ignore (O.invoke t ~tid:0 add [| 1L |]);
  Alcotest.(check int64) "post-recovery op" 211L (read_counter t)

let test_crash_with_evictions () =
  List.iter
    (fun seed ->
      let t, add, _ = make () in
      for _ = 1 to 15 do
        ignore (O.invoke t ~tid:0 add [| 2L |])
      done;
      O.crash_with_evictions t ~seed ~prob:0.5;
      Alcotest.(check int64) "durable under evictions" 30L (read_counter t))
    [ 3; 4; 5 ]

let test_single_fence_per_update () =
  let t, add, _ = make () in
  ignore (O.invoke t ~tid:0 add [| 1L |]);
  let s0 = O.stats t in
  for _ = 1 to 10 do
    ignore (O.invoke t ~tid:0 add [| 1L |])
  done;
  let s1 = O.stats t in
  let d = Pmem.Stats.diff s1 s0 in
  Alcotest.(check int) "exactly one fence per update" 10 (Pmem.Stats.fences d)

let test_reads_execute_no_fence () =
  let t, add, _ = make () in
  ignore (O.invoke t ~tid:0 add [| 1L |]);
  let s0 = O.stats t in
  for _ = 1 to 10 do
    ignore (read_counter t)
  done;
  let d = Pmem.Stats.diff (O.stats t) s0 in
  Alcotest.(check int) "no fences on the read path" 0 (Pmem.Stats.fences d);
  Alcotest.(check int) "no pwbs on the read path" 0 d.Pmem.Stats.pwb

let test_concurrent_invokes () =
  let t, add, _ = make () in
  let per = 200 in
  let ds =
    List.init 3 (fun tid ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              ignore (O.invoke t ~tid add [| 1L |])
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int64) "all increments linearized" (Int64.of_int (3 * per))
    (read_counter t);
  O.crash_and_recover t;
  Alcotest.(check int64) "all durable" (Int64.of_int (3 * per)) (read_counter t)

let test_checkpoint_rolls_log () =
  (* Cross the log capacity several times: the snapshot + truncation path
     must preserve the state (single-threaded, as documented). *)
  let t, add, _ = make ~num_threads:1 () in
  let n = 10_000 in
  for _ = 1 to n do
    ignore (O.invoke t ~tid:0 add [| 1L |])
  done;
  Alcotest.(check int64) "value across checkpoints" (Int64.of_int n)
    (read_counter t);
  O.crash_and_recover t;
  Alcotest.(check int64) "snapshot + log tail replayed" (Int64.of_int n)
    (read_counter t)

let test_per_thread_instances_catch_up () =
  let t, add, _ = make () in
  ignore (O.invoke t ~tid:0 add [| 42L |]);
  (* thread 3 never invoked anything; its replica catches up on read *)
  let v = O.read_only t ~tid:3 (fun tx -> O.get tx (Palloc.root_addr 1)) in
  Alcotest.(check int64) "other instance catches up" 42L v

let suites =
  [
    ( "onll",
      [
        Alcotest.test_case "invoke and result" `Quick test_invoke_and_result;
        Alcotest.test_case "unknown opcode" `Quick test_unknown_opcode;
        Alcotest.test_case "crash replays log" `Quick test_crash_replays_log;
        Alcotest.test_case "crash with evictions" `Quick test_crash_with_evictions;
        Alcotest.test_case "single fence per update" `Quick
          test_single_fence_per_update;
        Alcotest.test_case "fence-free reads" `Quick test_reads_execute_no_fence;
        Alcotest.test_case "concurrent invokes" `Slow test_concurrent_invokes;
        Alcotest.test_case "checkpoint rolls log" `Slow test_checkpoint_rolls_log;
        Alcotest.test_case "instances catch up" `Quick
          test_per_thread_instances_catch_up;
      ] );
  ]
