(* Multi-structure ACID transactions: the paper's motivating use case —
   "applications that need to persist data are likely to have several
   persistent data structure instances and likely require consistent
   transactions between them" (§1).

   One PTM region hosts a hash set, a queue and a counter; every transfer
   touches all three in a single transaction.  Cross-structure invariants
   are checked under concurrency and across crashes with random
   evictions. *)

module Make (P : Ptm.Ptm_intf.S) = struct
  module H = Pds.Hash_set.Make (P)
  module Q = Pds.Pqueue.Make (P)

  let set_slot = 1
  let queue_slot = 2
  let moved_count = Palloc.root_addr 3

  let mk () =
    let p = P.create ~num_threads:4 ~words:(1 lsl 16) () in
    H.init p ~tid:0 ~slot:set_slot;
    Q.init p ~tid:0 ~slot:queue_slot;
    p

  (* Move key [k] from the set into the queue and count it — atomically.
     Composed from the structures' tx-level operations by reusing their
     underlying transactional accessors through one update. *)
  let move_tx p ~tid k =
    (* The pds functors expose one-transaction ops; to compose we re-do the
       operations inside a single update using the same node layouts via
       remove+enqueue expressed as two phases guarded by the same tx.  The
       functors don't take an external tx, so we emulate a composite
       transaction with the documented pattern: a single update closure
       performing all reads/writes directly. *)
    P.update p ~tid (fun tx ->
        (* inline hash-set remove (layout from Pds.Hash_set) *)
        let hdr = Int64.to_int (P.get tx (Palloc.root_addr set_slot)) in
        let nbuckets = Int64.to_int (P.get tx hdr) in
        let buckets = Int64.to_int (P.get tx (hdr + 2)) in
        (* same mixer as Pds.Hash_set *)
        let hash k =
          let h = Int64.to_int k land max_int in
          let h = h lxor (h lsr 30) in
          let h = h * 0x2545F4914F6CDD1D land max_int in
          let h = h lxor (h lsr 27) in
          let h = h * 0x27220A95 land max_int in
          (h lxor (h lsr 31)) land max_int
        in
        let b = buckets + (hash k mod nbuckets) in
        let rec unlink prev cur =
          if cur = 0 then false
          else if Int64.equal (P.get tx cur) k then begin
            let nxt = P.get tx (cur + 1) in
            if prev = 0 then P.set tx b nxt else P.set tx (prev + 1) nxt;
            P.dealloc tx cur;
            P.set tx (hdr + 1) (Int64.sub (P.get tx (hdr + 1)) 1L);
            true
          end
          else unlink cur (Int64.to_int (P.get tx (cur + 1)))
        in
        if not (unlink 0 (Int64.to_int (P.get tx b))) then 0L
        else begin
          (* inline queue enqueue (layout from Pds.Pqueue) *)
          let qh = Int64.to_int (P.get tx (Palloc.root_addr queue_slot)) in
          let n = P.alloc tx 2 in
          P.set tx n k;
          P.set tx (n + 1) 0L;
          let tail = Int64.to_int (P.get tx (qh + 1)) in
          P.set tx (tail + 1) (Int64.of_int n);
          P.set tx (qh + 1) (Int64.of_int n);
          (* counter *)
          P.set tx moved_count (Int64.add (P.get tx moved_count) 1L);
          1L
        end)
    = 1L

  let invariant_holds p ~initial =
    let in_set = H.cardinal p ~tid:0 ~slot:set_slot in
    let in_queue = Q.length p ~tid:0 ~slot:queue_slot in
    let moved =
      Int64.to_int (P.read_only p ~tid:0 (fun tx -> P.get tx moved_count))
    in
    in_set + in_queue = initial && in_queue = moved

  let test_atomic_move () =
    let p = mk () in
    for i = 1 to 20 do
      ignore (H.add p ~tid:0 ~slot:set_slot (Int64.of_int i))
    done;
    Alcotest.(check bool) "move existing" true (move_tx p ~tid:0 7L);
    Alcotest.(check bool) "move absent fails" false (move_tx p ~tid:0 7L);
    Alcotest.(check bool) "invariant" true (invariant_holds p ~initial:20);
    Alcotest.(check (option int64)) "queued" (Some 7L)
      (Q.peek p ~tid:0 ~slot:queue_slot)

  let test_moves_with_crashes () =
    let p = mk () in
    let initial = 50 in
    for i = 1 to initial do
      ignore (H.add p ~tid:0 ~slot:set_slot (Int64.of_int i))
    done;
    let st = Random.State.make [| 77 |] in
    for round = 1 to 5 do
      for _ = 1 to 8 do
        ignore (move_tx p ~tid:0 (Int64.of_int (1 + Random.State.int st initial)))
      done;
      P.crash_with_evictions p ~seed:(round * 13) ~prob:0.4;
      Alcotest.(check bool)
        (Printf.sprintf "cross-structure invariant after crash %d" round)
        true
        (invariant_holds p ~initial)
    done

  let test_concurrent_moves () =
    let p = mk () in
    let initial = 90 in
    for i = 1 to initial do
      ignore (H.add p ~tid:0 ~slot:set_slot (Int64.of_int i))
    done;
    let ds =
      List.init 3 (fun tid ->
          Domain.spawn (fun () ->
              (* disjoint key ranges per thread *)
              for i = 1 to 30 do
                ignore (move_tx p ~tid (Int64.of_int ((tid * 30) + i)))
              done))
    in
    List.iter Domain.join ds;
    P.crash_and_recover p;
    Alcotest.(check bool) "invariant after concurrent moves + crash" true
      (invariant_holds p ~initial);
    Alcotest.(check int) "everything moved" 0 (H.cardinal p ~tid:0 ~slot:set_slot)

  let suites =
    [
      ( "multi[" ^ P.name ^ "]",
        [
          Alcotest.test_case "atomic move" `Quick test_atomic_move;
          Alcotest.test_case "moves with crashes" `Quick test_moves_with_crashes;
          Alcotest.test_case "concurrent moves" `Slow test_concurrent_moves;
        ] );
    ]
end
