(* Linearizability-oriented stress tests.

   Full history checking is exponential; instead these tests exploit
   operations whose linearizability admits complete, cheap validation:

   - fetch-and-increment: every update returns the counter value it
     installed, so under any linearization the multiset of returned values
     must be exactly {1 .. total} with no duplicates and no gaps;
   - queue transfer: tokens are moved between two queues; conservation and
     no-duplication must hold at every quiescent point;
   - register with monotone writes: readers may never observe the sequence
     going backwards (regression would prove a non-linearizable read). *)

module Make (P : Ptm.Ptm_intf.S) = struct
  let root1 = Palloc.root_addr 1

  let test_fetch_and_increment_distinct () =
    let nthreads = 4 in
    let per = 200 in
    let p = P.create ~num_threads:nthreads ~words:(1 lsl 12) () in
    let results = Array.make (nthreads * per) 0L in
    let ds =
      List.init nthreads (fun tid ->
          Domain.spawn (fun () ->
              for i = 0 to per - 1 do
                let v =
                  P.update p ~tid (fun tx ->
                      let v = Int64.add (P.get tx root1) 1L in
                      P.set tx root1 v;
                      v)
                in
                results.((tid * per) + i) <- v
              done))
    in
    List.iter Domain.join ds;
    let sorted = List.sort compare (Array.to_list results) in
    Alcotest.(check (list int64))
      "returned values are exactly 1..N (no dup, no gap, no loss)"
      (List.init (nthreads * per) (fun i -> Int64.of_int (i + 1)))
      sorted

  let test_two_queue_token_transfer () =
    let module Q = Pds.Pqueue.Make (P) in
    let nthreads = 3 in
    let tokens = 60 in
    let p = P.create ~num_threads:nthreads ~words:(1 lsl 15) () in
    Q.init p ~tid:0 ~slot:1;
    Q.init p ~tid:0 ~slot:2;
    for i = 1 to tokens do
      Q.enqueue p ~tid:0 ~slot:1 (Int64.of_int i)
    done;
    (* threads shuttle tokens between the queues; a token must never be
       duplicated or lost *)
    let ds =
      List.init nthreads (fun tid ->
          Domain.spawn (fun () ->
              for _ = 1 to 100 do
                (match Q.dequeue p ~tid ~slot:1 with
                | Some v -> Q.enqueue p ~tid ~slot:2 v
                | None -> ());
                match Q.dequeue p ~tid ~slot:2 with
                | Some v -> Q.enqueue p ~tid ~slot:1 v
                | None -> ()
              done))
    in
    List.iter Domain.join ds;
    P.crash_and_recover p;
    let drain slot =
      let rec go acc =
        match Q.dequeue p ~tid:0 ~slot with
        | Some v -> go (v :: acc)
        | None -> acc
      in
      go []
    in
    let all = drain 1 @ drain 2 in
    Alcotest.(check (list int64)) "tokens conserved exactly once"
      (List.init tokens (fun i -> Int64.of_int (i + 1)))
      (List.sort compare all)

  let test_monotone_register_under_load () =
    let nthreads = 4 in
    let p = P.create ~num_threads:nthreads ~words:(1 lsl 12) () in
    let stop = Atomic.make false in
    let violation = Atomic.make false in
    let readers =
      List.init 2 (fun i ->
          Domain.spawn (fun () ->
              let tid = 2 + i in
              let last = ref 0L in
              while not (Atomic.get stop) do
                let v = P.read_only p ~tid (fun tx -> P.get tx root1) in
                if Int64.compare v !last < 0 then Atomic.set violation true;
                last := v
              done))
    in
    let writers =
      List.init 2 (fun tid ->
          Domain.spawn (fun () ->
              for _ = 1 to 200 do
                ignore
                  (P.update p ~tid (fun tx ->
                       P.set tx root1 (Int64.add (P.get tx root1) 1L);
                       0L))
              done))
    in
    List.iter Domain.join writers;
    Atomic.set stop true;
    List.iter Domain.join readers;
    Alcotest.(check bool) "reads never regress" false (Atomic.get violation)

  let suites =
    [
      ( "linearizability[" ^ P.name ^ "]",
        [
          Alcotest.test_case "fetch-and-increment distinct" `Slow
            test_fetch_and_increment_distinct;
          Alcotest.test_case "token transfer conserved" `Slow
            test_two_queue_token_transfer;
          Alcotest.test_case "monotone register" `Slow
            test_monotone_register_under_load;
        ] );
    ]
end
