(* Tests for the volatile CX universal construction: wrapping plain
   sequential OCaml objects into linearizable wait-free concurrent ones. *)

module Cx = Ptm.Cx

(* A sequential stack as the wrapped object. *)
type stack = { mutable items : int64 list }

let copy_stack s = { items = s.items }

let push v (s : stack) =
  s.items <- v :: s.items;
  1L

let pop (s : stack) =
  match s.items with
  | [] -> Int64.min_int
  | x :: rest ->
      s.items <- rest;
      x

let peek (s : stack) = match s.items with [] -> Int64.min_int | x :: _ -> x
let size (s : stack) = Int64.of_int (List.length s.items)

let mk ?(num_threads = 4) () =
  Cx.create ~num_threads ~copy:copy_stack { items = [] }

let test_sequential_ops () =
  let t = mk () in
  Alcotest.(check int64) "empty pop" Int64.min_int
    (Cx.apply_update t ~tid:0 pop);
  ignore (Cx.apply_update t ~tid:0 (push 1L));
  ignore (Cx.apply_update t ~tid:0 (push 2L));
  Alcotest.(check int64) "peek" 2L (Cx.apply_read t ~tid:0 peek);
  Alcotest.(check int64) "size" 2L (Cx.apply_read t ~tid:0 size);
  Alcotest.(check int64) "pop lifo" 2L (Cx.apply_update t ~tid:0 pop);
  Alcotest.(check int64) "pop lifo 2" 1L (Cx.apply_update t ~tid:0 pop)

let test_reads_see_latest () =
  let t = mk () in
  for i = 1 to 50 do
    ignore (Cx.apply_update t ~tid:0 (push (Int64.of_int i)));
    Alcotest.(check int64) "read after update" (Int64.of_int i)
      (Cx.apply_read t ~tid:1 peek)
  done

let test_concurrent_pushes_all_linearized () =
  let nthreads = 4 in
  let per = 250 in
  let t = mk ~num_threads:nthreads () in
  let ds =
    List.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore
                (Cx.apply_update t ~tid (push (Int64.of_int ((tid * per) + i))))
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int64) "all pushes applied exactly once"
    (Int64.of_int (nthreads * per))
    (Cx.apply_read t ~tid:0 size);
  (* each element exactly once, and per-thread order is LIFO-consistent *)
  let all = ref [] in
  ignore
    (Cx.apply_read t ~tid:0 (fun s ->
         all := s.items;
         0L));
  let sorted = List.sort compare (List.map Int64.to_int !all) in
  Alcotest.(check (list int)) "no duplicates or losses"
    (List.init (nthreads * per) Fun.id)
    sorted

let test_concurrent_push_pop_conservation () =
  let nthreads = 3 in
  let t = mk ~num_threads:nthreads () in
  let pops = Atomic.make 0 in
  let ds =
    List.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            for i = 1 to 100 do
              ignore (Cx.apply_update t ~tid (push (Int64.of_int i)));
              if i mod 2 = 0 then
                if not (Int64.equal (Cx.apply_update t ~tid pop) Int64.min_int)
                then Atomic.incr pops
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int64) "conservation"
    (Int64.of_int ((nthreads * 100) - Atomic.get pops))
    (Cx.apply_read t ~tid:0 size)

let test_readers_do_not_block_updates () =
  let t = mk () in
  let stop = Atomic.make false in
  let readers =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              ignore (Cx.apply_read t ~tid:(2 + i) size)
            done))
  in
  for i = 1 to 200 do
    ignore (Cx.apply_update t ~tid:0 (push (Int64.of_int i)))
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Alcotest.(check int64) "updates completed under read load" 200L
    (Cx.apply_read t ~tid:0 size)

let qcheck_matches_sequential =
  (* Random single-threaded op sequences through CX match a plain stack. *)
  QCheck.Test.make ~name:"CX(stack) = sequential stack" ~count:100
    QCheck.(list (option (int_bound 1000)))
  @@ fun ops ->
  let t = mk () in
  let model = ref [] in
  List.for_all
    (fun op ->
      match op with
      | Some v ->
          let v = Int64.of_int v in
          model := v :: !model;
          Int64.equal (Cx.apply_update t ~tid:0 (push v)) 1L
      | None -> (
          let expect =
            match !model with
            | [] -> Int64.min_int
            | x :: rest ->
                model := rest;
                x
          in
          Int64.equal (Cx.apply_update t ~tid:0 pop) expect))
    ops
  && Int64.equal
       (Cx.apply_read t ~tid:0 size)
       (Int64.of_int (List.length !model))

let suites =
  [
    ( "cx_volatile",
      [
        Alcotest.test_case "sequential ops" `Quick test_sequential_ops;
        Alcotest.test_case "reads see latest" `Quick test_reads_see_latest;
        Alcotest.test_case "concurrent pushes" `Slow
          test_concurrent_pushes_all_linearized;
        Alcotest.test_case "push/pop conservation" `Slow
          test_concurrent_push_pop_conservation;
        Alcotest.test_case "readers don't block" `Slow
          test_readers_do_not_block_updates;
        QCheck_alcotest.to_alcotest qcheck_matches_sequential;
      ] );
  ]
