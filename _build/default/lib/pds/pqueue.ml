(** Linked-list FIFO queue over any PTM (the paper's queue benchmark,
    Figure 5: pre-filled with 1,000 elements, each thread alternating an
    enqueue transaction and a dequeue transaction).

    Layout: root slot -> header [head; tail]; node: [value; next].
    Michael–Scott style with a permanent sentinel node, so [head] always
    points at a node whose successor is the first element. *)

module Make (P : Ptm.Ptm_intf.S) = struct
  let node_words = 2

  type header = { hdr : int }

  let header tx slot = { hdr = Int64.to_int (P.get tx (Palloc.root_addr slot)) }
  let[@inline] head tx h = Int64.to_int (P.get tx h.hdr)
  let[@inline] tail tx h = Int64.to_int (P.get tx (h.hdr + 1))

  (** Initialise an empty queue rooted at [slot]. *)
  let init p ~tid ~slot =
    ignore
      (P.update p ~tid (fun tx ->
           let hdr = P.alloc tx 2 in
           let sentinel = P.alloc tx node_words in
           P.set tx sentinel 0L;
           P.set tx (sentinel + 1) 0L;
           P.set tx hdr (Int64.of_int sentinel);
           P.set tx (hdr + 1) (Int64.of_int sentinel);
           P.set tx (Palloc.root_addr slot) (Int64.of_int hdr);
           0L))

  (** Append [v] (one transaction). *)
  let enqueue p ~tid ~slot v =
    ignore
      (P.update p ~tid (fun tx ->
           let h = header tx slot in
           let n = P.alloc tx node_words in
           P.set tx n v;
           P.set tx (n + 1) 0L;
           let t0 = tail tx h in
           P.set tx (t0 + 1) (Int64.of_int n);
           P.set tx (h.hdr + 1) (Int64.of_int n);
           0L))

  (** Remove the oldest element, if any (one transaction). *)
  let dequeue p ~tid ~slot =
    let r =
      P.update p ~tid (fun tx ->
          let h = header tx slot in
          let s = head tx h in
          let first = Int64.to_int (P.get tx (s + 1)) in
          if first = 0 then Int64.min_int
          else begin
            let v = P.get tx first in
            P.set tx h.hdr (Int64.of_int first);
            (* [first] becomes the new sentinel; free the old one. *)
            P.dealloc tx s;
            v
          end)
    in
    if Int64.equal r Int64.min_int then None else Some r

  (** Number of elements (read-only traversal). *)
  let length p ~tid ~slot =
    Int64.to_int
      (P.read_only p ~tid (fun tx ->
           let h = header tx slot in
           let rec go acc cur =
             if cur = 0 then acc
             else go (Int64.add acc 1L) (Int64.to_int (P.get tx (cur + 1)))
           in
           go 0L (Int64.to_int (P.get tx (head tx h + 1)))))

  (** Front element without removing it. *)
  let peek p ~tid ~slot =
    let r =
      P.read_only p ~tid (fun tx ->
          let h = header tx slot in
          let first = Int64.to_int (P.get tx (head tx h + 1)) in
          if first = 0 then Int64.min_int else P.get tx first)
    in
    if Int64.equal r Int64.min_int then None else Some r
end
