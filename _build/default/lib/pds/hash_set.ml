(** Resizable separate-chaining hash set over any PTM (the paper's hash-set
    workload, Figure 6 bottom; also the base of RedoDB's hash map).

    Layout:
    - root slot -> header [bucket_count; size; buckets_ptr]
    - buckets_ptr -> array of [bucket_count] head pointers
    - node: [key; next]

    The table doubles when the load factor exceeds 2 (a single large
    transaction that rehashes every node — the combining/aggregation
    stress case the paper highlights for its flush optimizations). *)

module Make (P : Ptm.Ptm_intf.S) = struct
  let node_words = 2

  let[@inline] hash64 k =
    (* Fibonacci-style multiplicative mixing: well distributed buckets. *)
    let h = Int64.to_int k land max_int in
    let h = h lxor (h lsr 30) in
    let h = h * 0x2545F4914F6CDD1D land max_int in
    let h = h lxor (h lsr 27) in
    let h = h * 0x27220A95 land max_int in
    (h lxor (h lsr 31)) land max_int

  type header = { hdr : int }

  let header tx slot = { hdr = Int64.to_int (P.get tx (Palloc.root_addr slot)) }
  let[@inline] bucket_count tx h = Int64.to_int (P.get tx h.hdr)
  let[@inline] size tx h = Int64.to_int (P.get tx (h.hdr + 1))
  let[@inline] buckets tx h = Int64.to_int (P.get tx (h.hdr + 2))
  let[@inline] set_bucket_count tx h v = P.set tx h.hdr (Int64.of_int v)
  let[@inline] set_size tx h v = P.set tx (h.hdr + 1) (Int64.of_int v)
  let[@inline] set_buckets tx h v = P.set tx (h.hdr + 2) (Int64.of_int v)

  (** Initialise an empty set rooted at [slot] with [initial_buckets]. *)
  let init ?(initial_buckets = 16) p ~tid ~slot =
    ignore
      (P.update p ~tid (fun tx ->
           let hdr = P.alloc tx 3 in
           let b = P.alloc tx initial_buckets in
           for i = 0 to initial_buckets - 1 do
             P.set tx (b + i) 0L
           done;
           P.set tx hdr (Int64.of_int initial_buckets);
           P.set tx (hdr + 1) 0L;
           P.set tx (hdr + 2) (Int64.of_int b);
           P.set tx (Palloc.root_addr slot) (Int64.of_int hdr);
           0L))

  let[@inline] bucket_of tx h k = buckets tx h + (hash64 k mod bucket_count tx h)

  let find_in_chain tx head k =
    let rec go cur =
      if cur = 0 then None
      else if Int64.equal (P.get tx cur) k then Some cur
      else go (Int64.to_int (P.get tx (cur + 1)))
    in
    go head

  (* Double the table, rehashing every chain: one big transaction. *)
  let resize tx h =
    let old_n = bucket_count tx h in
    let old_b = buckets tx h in
    let new_n = 2 * old_n in
    let new_b = P.alloc tx new_n in
    for i = 0 to new_n - 1 do
      P.set tx (new_b + i) 0L
    done;
    for i = 0 to old_n - 1 do
      let rec rehash cur =
        if cur <> 0 then begin
          let nxt = Int64.to_int (P.get tx (cur + 1)) in
          let k = P.get tx cur in
          let dst = new_b + (hash64 k mod new_n) in
          P.set tx (cur + 1) (P.get tx dst);
          P.set tx dst (Int64.of_int cur);
          rehash nxt
        end
      in
      rehash (Int64.to_int (P.get tx (old_b + i)))
    done;
    set_buckets tx h new_b;
    set_bucket_count tx h new_n;
    P.dealloc tx old_b

  (** [add p ~tid ~slot k]: inserts [k]; false if already present. *)
  let add p ~tid ~slot k =
    P.update p ~tid (fun tx ->
        let h = header tx slot in
        let b = bucket_of tx h k in
        match find_in_chain tx (Int64.to_int (P.get tx b)) k with
        | Some _ -> 0L
        | None ->
            let n = P.alloc tx node_words in
            P.set tx n k;
            P.set tx (n + 1) (P.get tx b);
            P.set tx b (Int64.of_int n);
            let sz = size tx h + 1 in
            set_size tx h sz;
            if sz > 2 * bucket_count tx h then resize tx h;
            1L)
    = 1L

  (** [remove p ~tid ~slot k]: deletes [k]; false if absent. *)
  let remove p ~tid ~slot k =
    P.update p ~tid (fun tx ->
        let h = header tx slot in
        let b = bucket_of tx h k in
        let rec unlink prev cur =
          if cur = 0 then 0L
          else if Int64.equal (P.get tx cur) k then begin
            let nxt = P.get tx (cur + 1) in
            if prev = 0 then P.set tx b nxt else P.set tx (prev + 1) nxt;
            P.dealloc tx cur;
            set_size tx h (size tx h - 1);
            1L
          end
          else unlink cur (Int64.to_int (P.get tx (cur + 1)))
        in
        unlink 0 (Int64.to_int (P.get tx b)))
    = 1L

  (** Membership test (read-only transaction). *)
  let contains p ~tid ~slot k =
    P.read_only p ~tid (fun tx ->
        let h = header tx slot in
        let b = bucket_of tx h k in
        match find_in_chain tx (Int64.to_int (P.get tx b)) k with
        | Some _ -> 1L
        | None -> 0L)
    = 1L

  let cardinal p ~tid ~slot =
    Int64.to_int
      (P.read_only p ~tid (fun tx -> Int64.of_int (size tx (header tx slot))))

  (** Fold over all elements (read-only transaction). *)
  let fold p ~tid ~slot ~init:acc0 f =
    let r = ref acc0 in
    ignore
      (P.read_only p ~tid (fun tx ->
           let h = header tx slot in
           let n = bucket_count tx h in
           let b = buckets tx h in
           for i = 0 to n - 1 do
             let rec chain cur =
               if cur <> 0 then begin
                 r := f !r (P.get tx cur);
                 chain (Int64.to_int (P.get tx (cur + 1)))
               end
             in
             chain (Int64.to_int (P.get tx (b + i)))
           done;
           0L));
    !r
end
