(** Sorted singly-linked-list set over any PTM (the paper's linked-list
    workload, Figure 6 top).  Each operation is a single durable
    transaction; handles are persistent root-slot numbers, so a set found
    at slot [s] before a crash is found there after recovery. *)

module Make (P : Ptm.Ptm_intf.S) : sig
  (** [init p ~tid ~slot] creates an empty set rooted at root slot
      [slot] (1 .. [Palloc.root_slots]). *)
  val init : P.t -> tid:int -> slot:int -> unit

  (** [add p ~tid ~slot k] inserts [k]; false if already present. *)
  val add : P.t -> tid:int -> slot:int -> int64 -> bool

  (** [remove p ~tid ~slot k] deletes [k]; false if absent. *)
  val remove : P.t -> tid:int -> slot:int -> int64 -> bool

  (** Membership test (read-only transaction). *)
  val contains : P.t -> tid:int -> slot:int -> int64 -> bool

  (** Number of elements (read-only traversal). *)
  val cardinal : P.t -> tid:int -> slot:int -> int

  (** Elements in ascending order. *)
  val elements : P.t -> tid:int -> slot:int -> int64 list
end
