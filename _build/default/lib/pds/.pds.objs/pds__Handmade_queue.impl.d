lib/pds/handmade_queue.ml: Atomic Int64 Pmem
