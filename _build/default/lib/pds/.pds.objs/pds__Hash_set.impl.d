lib/pds/hash_set.ml: Int64 Palloc Ptm
