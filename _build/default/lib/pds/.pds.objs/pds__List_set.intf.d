lib/pds/list_set.mli: Ptm
