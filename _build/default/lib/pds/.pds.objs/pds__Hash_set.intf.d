lib/pds/hash_set.mli: Ptm
