lib/pds/rbtree_set.ml: Int64 Palloc Ptm
