lib/pds/pqueue.mli: Ptm
