lib/pds/pqueue.ml: Int64 Palloc Ptm
