lib/pds/list_set.ml: Int64 List Palloc Ptm
