lib/pds/rbtree_set.mli: Ptm
