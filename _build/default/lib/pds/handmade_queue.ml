(** Handmade lock-free persistent queues: the FHMP (Friedman, Herlihy,
    Marathe, Petrank, PPoPP '18) and NormOpt (Ben-David et al., SPAA '19)
    baselines of Figure 5.

    Both are Michael–Scott queues operating directly on PM words with CAS,
    reproduced at the level that matters for the paper's comparison — their
    persistence discipline (pwb/pfence placement and counts) and their use
    of a {e volatile} allocator (libvmmalloc in the original evaluation):
    the paper's point is that although these queues persist their nodes,
    the allocator metadata is volatile, so after a crash the data structure
    is unrecoverable.  We reproduce that too: {!recover} refuses.

    Fence profile per the paper (§1): FHMP executes 2 pfences per enqueue
    and 4 per dequeue; NormOpt's delay-free construction is modelled with
    1 and 2.  Dequeued nodes are not reclaimed (reclamation fences are
    explicitly excluded from the paper's counts). *)

module type DISCIPLINE = sig
  val name : string
  val enq_fences : int
  val deq_fences : int
end

module Make (D : DISCIPLINE) = struct
  let name = D.name

  (* PM layout: line 0 reserved; [8] = head, [9] = tail; nodes from 16. *)
  let head_addr = 8
  let tail_addr = 9
  let heap_start = 16

  type t = {
    pm : Pmem.t;
    words : int;
    bump : int Atomic.t; (* volatile allocator: lost on crash *)
    mutable crashed : bool;
  }

  let create ~num_threads ~words () =
    let pm = Pmem.create ~max_threads:num_threads ~words () in
    let sentinel = heap_start in
    Pmem.set_word pm ~tid:0 sentinel 0L;
    Pmem.set_word pm ~tid:0 (sentinel + 1) 0L;
    Pmem.set_word pm ~tid:0 head_addr (Int64.of_int sentinel);
    Pmem.set_word pm ~tid:0 tail_addr (Int64.of_int sentinel);
    Pmem.pwb_range pm ~tid:0 0 (heap_start + 1);
    Pmem.psync pm ~tid:0;
    { pm; words; bump = Atomic.make (heap_start + 2); crashed = false }

  let pmem t = t.pm
  let stats t = Pmem.stats t.pm

  exception Unrecoverable of string

  let check_usable t =
    if t.crashed then
      raise
        (Unrecoverable
           (D.name
          ^ ": volatile allocator metadata was lost in the crash; the queue \
             cannot be recovered"))

  (* Volatile node allocation: a bump pointer that does not survive
     failures (the libvmmalloc model). *)
  let alloc_node t =
    let n = Atomic.fetch_and_add t.bump 2 in
    if n + 1 >= t.words then failwith (D.name ^ ": out of queue memory");
    n

  (* Spread D.x fences as: the first [pwbs_then_fence] pairs are issued at
     algorithm points; remaining budget becomes trailing pwb+fence pairs
     (persisting dequeue markers etc. in the original algorithms). *)
  let extra_fences t ~tid ~addr count =
    for _ = 1 to count do
      Pmem.pwb t.pm ~tid addr;
      Pmem.pfence t.pm ~tid
    done

  let enqueue t ~tid v =
    check_usable t;
    let n = alloc_node t in
    Pmem.set_word t.pm ~tid n v;
    Pmem.set_word t.pm ~tid (n + 1) 0L;
    Pmem.pwb t.pm ~tid n;
    if D.enq_fences >= 2 then Pmem.pfence t.pm ~tid;
    let rec loop () =
      let lt = Int64.to_int (Pmem.get_word t.pm tail_addr) in
      let ln = Pmem.get_word t.pm (lt + 1) in
      if Int64.equal ln 0L then begin
        if
          Pmem.cas_word t.pm ~tid (lt + 1) ~expected:0L
            ~desired:(Int64.of_int n)
        then begin
          Pmem.pwb t.pm ~tid (lt + 1);
          Pmem.pfence t.pm ~tid;
          ignore
            (Pmem.cas_word t.pm ~tid tail_addr ~expected:(Int64.of_int lt)
               ~desired:(Int64.of_int n))
        end
        else loop ()
      end
      else begin
        (* help: persist and advance the lagging tail *)
        Pmem.pwb t.pm ~tid (lt + 1);
        ignore
          (Pmem.cas_word t.pm ~tid tail_addr ~expected:(Int64.of_int lt)
             ~desired:ln);
        loop ()
      end
    in
    loop ()

  let dequeue t ~tid =
    check_usable t;
    let rec loop () =
      let h = Int64.to_int (Pmem.get_word t.pm head_addr) in
      let n = Pmem.get_word t.pm (h + 1) in
      if Int64.equal n 0L then None
      else begin
        let ni = Int64.to_int n in
        let v = Pmem.get_word t.pm ni in
        (* FHMP persists the link it is about to consume before advancing. *)
        Pmem.pwb t.pm ~tid (h + 1);
        Pmem.pfence t.pm ~tid;
        if
          Pmem.cas_word t.pm ~tid head_addr ~expected:(Int64.of_int h)
            ~desired:n
        then begin
          Pmem.pwb t.pm ~tid head_addr;
          Pmem.pfence t.pm ~tid;
          (* remaining fence budget: dequeue markers / returned values *)
          extra_fences t ~tid ~addr:ni (D.deq_fences - 2);
          Some v
        end
        else loop ()
      end
    in
    loop ()

  let length t =
    check_usable t;
    let rec go acc cur =
      if cur = 0 then acc
      else go (acc + 1) (Int64.to_int (Pmem.get_word t.pm (cur + 1)))
    in
    let h = Int64.to_int (Pmem.get_word t.pm head_addr) in
    go 0 (Int64.to_int (Pmem.get_word t.pm (h + 1)))

  (** Simulate a crash.  The nodes may well be durable — but the volatile
      allocator metadata is gone, so the structure is declared unusable,
      exactly the deficiency the paper points out for these baselines. *)
  let crash t =
    Pmem.crash t.pm;
    t.crashed <- true

  let recover t =
    check_usable t;
    ()
end

module Fhmp = Make (struct
  let name = "FHMP"
  let enq_fences = 2
  let deq_fences = 4
end)

module Norm_opt = Make (struct
  let name = "NormOpt"
  let enq_fences = 1
  let deq_fences = 2
end)
