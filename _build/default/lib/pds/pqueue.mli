(** Linked FIFO queue over any PTM (the paper's queue benchmark, Figure
    5).  Michael–Scott layout with a permanent sentinel; enqueue and
    dequeue are single transactions.  Values must not be
    [Int64.min_int] (reserved as the empty marker). *)

module Make (P : Ptm.Ptm_intf.S) : sig
  val init : P.t -> tid:int -> slot:int -> unit
  val enqueue : P.t -> tid:int -> slot:int -> int64 -> unit
  val dequeue : P.t -> tid:int -> slot:int -> int64 option
  val peek : P.t -> tid:int -> slot:int -> int64 option

  (** Read-only traversal. *)
  val length : P.t -> tid:int -> slot:int -> int
end
