(** Red-black tree set over any PTM (the paper's tree workload, Figure 6
    center): CLRS insert/delete with parent pointers and a real NIL
    sentinel.  Rebalancing makes update transactions large and poorly
    aggregatable — the effect the paper discusses for 100%-update tree
    workloads. *)

module Make (P : Ptm.Ptm_intf.S) : sig
  val init : P.t -> tid:int -> slot:int -> unit
  val add : P.t -> tid:int -> slot:int -> int64 -> bool
  val remove : P.t -> tid:int -> slot:int -> int64 -> bool
  val contains : P.t -> tid:int -> slot:int -> int64 -> bool
  val cardinal : P.t -> tid:int -> slot:int -> int

  (** Elements in ascending order. *)
  val elements : P.t -> tid:int -> slot:int -> int64 list

  (** Test oracle: BST order, no red-red edge, equal black heights,
      black root. *)
  val check_invariants : P.t -> tid:int -> slot:int -> bool
end
