(** Sorted singly-linked-list set over any PTM (the paper's linked-list
    workload, Figure 6 top).

    Layout: the designated root slot holds the address of the first node
    (0 = empty); a node is two words, [key; next].  All operations are
    single transactions; update operations follow the paper's benchmark
    protocol (remove then re-insert the same key). *)

module Make (P : Ptm.Ptm_intf.S) = struct
  let node_words = 2

  let[@inline] key tx n = P.get tx n
  let[@inline] next tx n = Int64.to_int (P.get tx (n + 1))

  (** Initialise an empty set rooted at [slot]. *)
  let init p ~tid ~slot =
    ignore (P.update p ~tid (fun tx -> P.set tx (Palloc.root_addr slot) 0L; 0L))

  (* Returns (predecessor, current) with current = first node >= k;
     predecessor = 0 when current is the head. *)
  let locate tx root k =
    let rec go prev cur =
      if cur = 0 then (prev, 0)
      else
        let ck = key tx cur in
        if Int64.compare ck k < 0 then go cur (next tx cur) else (prev, cur)
    in
    go 0 (Int64.to_int (P.get tx root))

  (** [add p ~tid ~slot k] inserts [k]; false if already present. *)
  let add p ~tid ~slot k =
    P.update p ~tid (fun tx ->
        let root = Palloc.root_addr slot in
        let prev, cur = locate tx root k in
        if cur <> 0 && Int64.equal (key tx cur) k then 0L
        else begin
          let n = P.alloc tx node_words in
          P.set tx n k;
          P.set tx (n + 1) (Int64.of_int cur);
          if prev = 0 then P.set tx root (Int64.of_int n)
          else P.set tx (prev + 1) (Int64.of_int n);
          1L
        end)
    = 1L

  (** [remove p ~tid ~slot k] deletes [k]; false if absent. *)
  let remove p ~tid ~slot k =
    P.update p ~tid (fun tx ->
        let root = Palloc.root_addr slot in
        let prev, cur = locate tx root k in
        if cur = 0 || not (Int64.equal (key tx cur) k) then 0L
        else begin
          let nxt = next tx cur in
          if prev = 0 then P.set tx root (Int64.of_int nxt)
          else P.set tx (prev + 1) (Int64.of_int nxt);
          P.dealloc tx cur;
          1L
        end)
    = 1L

  (** Membership test (read-only transaction). *)
  let contains p ~tid ~slot k =
    P.read_only p ~tid (fun tx ->
        let _, cur = locate tx (Palloc.root_addr slot) k in
        if cur <> 0 && Int64.equal (key tx cur) k then 1L else 0L)
    = 1L

  (** Number of elements (read-only traversal). *)
  let cardinal p ~tid ~slot =
    Int64.to_int
      (P.read_only p ~tid (fun tx ->
           let rec go acc cur =
             if cur = 0 then acc else go (Int64.add acc 1L) (next tx cur)
           in
           go 0L (Int64.to_int (P.get tx (Palloc.root_addr slot)))))

  (** Ascending list of elements. *)
  let elements p ~tid ~slot =
    let rec collect tx acc cur =
      if cur = 0 then List.rev acc
      else collect tx (key tx cur :: acc) (next tx cur)
    in
    let r = ref [] in
    ignore
      (P.read_only p ~tid (fun tx ->
           r := collect tx [] (Int64.to_int (P.get tx (Palloc.root_addr slot)));
           0L));
    !r
end
