(** Red-black tree set over any PTM (the paper's tree workload, Figure 6
    center: "a sequential implementation of a balanced red-black tree").

    Classic CLRS red-black tree with parent pointers and a real NIL
    sentinel node (its scratch fields absorb the fixup writes).  Layout:

    - root slot -> header block [root_ptr; nil_ptr]
    - node: 5 words [key; left; right; parent; color] (color 0 = black,
      1 = red)

    Every mutation is one transaction; rebalancing writes are what make
    tree transactions large and poorly aggregatable — the effect the paper
    discusses for the 100%-update tree workload. *)

module Make (P : Ptm.Ptm_intf.S) = struct
  let node_words = 5
  let black = 0L
  let red = 1L

  let[@inline] key tx n = P.get tx n
  let[@inline] left tx n = Int64.to_int (P.get tx (n + 1))
  let[@inline] right tx n = Int64.to_int (P.get tx (n + 2))
  let[@inline] parent tx n = Int64.to_int (P.get tx (n + 3))
  let[@inline] color tx n = P.get tx (n + 4)
  let[@inline] set_key tx n v = P.set tx n v
  let[@inline] set_left tx n v = P.set tx (n + 1) (Int64.of_int v)
  let[@inline] set_right tx n v = P.set tx (n + 2) (Int64.of_int v)
  let[@inline] set_parent tx n v = P.set tx (n + 3) (Int64.of_int v)
  let[@inline] set_color tx n v = P.set tx (n + 4) v

  type handles = { root_at : int; nil_at : int }

  let handles tx slot =
    let hdr = Int64.to_int (P.get tx (Palloc.root_addr slot)) in
    { root_at = hdr; nil_at = hdr + 1 }

  let[@inline] root tx h = Int64.to_int (P.get tx h.root_at)
  let[@inline] nil tx h = Int64.to_int (P.get tx h.nil_at)
  let[@inline] set_root tx h v = P.set tx h.root_at (Int64.of_int v)

  (** Initialise an empty tree rooted at [slot]. *)
  let init p ~tid ~slot =
    ignore
      (P.update p ~tid (fun tx ->
           let hdr = P.alloc tx 2 in
           let nil = P.alloc tx node_words in
           set_key tx nil 0L;
           set_left tx nil 0;
           set_right tx nil 0;
           set_parent tx nil 0;
           set_color tx nil black;
           P.set tx hdr (Int64.of_int nil);
           (* empty root = NIL *)
           P.set tx (hdr + 1) (Int64.of_int nil);
           P.set tx (Palloc.root_addr slot) (Int64.of_int hdr);
           0L))

  let left_rotate tx h x =
    let nil_n = nil tx h in
    let y = right tx x in
    set_right tx x (left tx y);
    if left tx y <> nil_n then set_parent tx (left tx y) x;
    set_parent tx y (parent tx x);
    if parent tx x = nil_n then set_root tx h y
    else if x = left tx (parent tx x) then set_left tx (parent tx x) y
    else set_right tx (parent tx x) y;
    set_left tx y x;
    set_parent tx x y

  let right_rotate tx h x =
    let nil_n = nil tx h in
    let y = left tx x in
    set_left tx x (right tx y);
    if right tx y <> nil_n then set_parent tx (right tx y) x;
    set_parent tx y (parent tx x);
    if parent tx x = nil_n then set_root tx h y
    else if x = right tx (parent tx x) then set_right tx (parent tx x) y
    else set_left tx (parent tx x) y;
    set_right tx y x;
    set_parent tx x y

  let insert_fixup tx h z0 =
    let z = ref z0 in
    while Int64.equal (color tx (parent tx !z)) red do
      let zp = parent tx !z in
      let zpp = parent tx zp in
      if zp = left tx zpp then begin
        let y = right tx zpp in
        if Int64.equal (color tx y) red then begin
          set_color tx zp black;
          set_color tx y black;
          set_color tx zpp red;
          z := zpp
        end
        else begin
          if !z = right tx zp then begin
            z := zp;
            left_rotate tx h !z
          end;
          let zp = parent tx !z in
          let zpp = parent tx zp in
          set_color tx zp black;
          set_color tx zpp red;
          right_rotate tx h zpp
        end
      end
      else begin
        let y = left tx zpp in
        if Int64.equal (color tx y) red then begin
          set_color tx zp black;
          set_color tx y black;
          set_color tx zpp red;
          z := zpp
        end
        else begin
          if !z = left tx zp then begin
            z := zp;
            right_rotate tx h !z
          end;
          let zp = parent tx !z in
          let zpp = parent tx zp in
          set_color tx zp black;
          set_color tx zpp red;
          left_rotate tx h zpp
        end
      end
    done;
    set_color tx (root tx h) black

  (** [add p ~tid ~slot k]: inserts [k]; false if already present. *)
  let add p ~tid ~slot k =
    P.update p ~tid (fun tx ->
        let h = handles tx slot in
        let nil_n = nil tx h in
        let rec descend y x =
          if x = nil_n then Some y
          else
            let c = Int64.compare k (key tx x) in
            if c = 0 then None
            else descend x (if c < 0 then left tx x else right tx x)
        in
        match descend nil_n (root tx h) with
        | None -> 0L
        | Some y ->
            let z = P.alloc tx node_words in
            set_key tx z k;
            set_left tx z nil_n;
            set_right tx z nil_n;
            set_parent tx z y;
            set_color tx z red;
            if y = nil_n then set_root tx h z
            else if Int64.compare k (key tx y) < 0 then set_left tx y z
            else set_right tx y z;
            insert_fixup tx h z;
            1L)
    = 1L

  let transplant tx h u v =
    let nil_n = nil tx h in
    if parent tx u = nil_n then set_root tx h v
    else if u = left tx (parent tx u) then set_left tx (parent tx u) v
    else set_right tx (parent tx u) v;
    set_parent tx v (parent tx u)

  let rec minimum tx h x =
    let nil_n = nil tx h in
    if left tx x = nil_n then x else minimum tx h (left tx x)

  let delete_fixup tx h x0 =
    let x = ref x0 in
    while !x <> root tx h && Int64.equal (color tx !x) black do
      let xp = parent tx !x in
      if !x = left tx xp then begin
        let w = ref (right tx xp) in
        if Int64.equal (color tx !w) red then begin
          set_color tx !w black;
          set_color tx xp red;
          left_rotate tx h xp;
          w := right tx (parent tx !x)
        end;
        if
          Int64.equal (color tx (left tx !w)) black
          && Int64.equal (color tx (right tx !w)) black
        then begin
          set_color tx !w red;
          x := parent tx !x
        end
        else begin
          if Int64.equal (color tx (right tx !w)) black then begin
            set_color tx (left tx !w) black;
            set_color tx !w red;
            right_rotate tx h !w;
            w := right tx (parent tx !x)
          end;
          let xp = parent tx !x in
          set_color tx !w (color tx xp);
          set_color tx xp black;
          set_color tx (right tx !w) black;
          left_rotate tx h xp;
          x := root tx h
        end
      end
      else begin
        let w = ref (left tx xp) in
        if Int64.equal (color tx !w) red then begin
          set_color tx !w black;
          set_color tx xp red;
          right_rotate tx h xp;
          w := left tx (parent tx !x)
        end;
        if
          Int64.equal (color tx (right tx !w)) black
          && Int64.equal (color tx (left tx !w)) black
        then begin
          set_color tx !w red;
          x := parent tx !x
        end
        else begin
          if Int64.equal (color tx (left tx !w)) black then begin
            set_color tx (right tx !w) black;
            set_color tx !w red;
            left_rotate tx h !w;
            w := left tx (parent tx !x)
          end;
          let xp = parent tx !x in
          set_color tx !w (color tx xp);
          set_color tx xp black;
          set_color tx (left tx !w) black;
          right_rotate tx h xp;
          x := root tx h
        end
      end
    done;
    set_color tx !x black

  (** [remove p ~tid ~slot k]: deletes [k]; false if absent. *)
  let remove p ~tid ~slot k =
    P.update p ~tid (fun tx ->
        let h = handles tx slot in
        let nil_n = nil tx h in
        let rec find x =
          if x = nil_n then None
          else
            let c = Int64.compare k (key tx x) in
            if c = 0 then Some x
            else find (if c < 0 then left tx x else right tx x)
        in
        match find (root tx h) with
        | None -> 0L
        | Some z ->
            let y_original_color = ref (color tx z) in
            let x =
              if left tx z = nil_n then begin
                let x = right tx z in
                transplant tx h z x;
                x
              end
              else if right tx z = nil_n then begin
                let x = left tx z in
                transplant tx h z x;
                x
              end
              else begin
                let y = minimum tx h (right tx z) in
                y_original_color := color tx y;
                let x = right tx y in
                if parent tx y = z then set_parent tx x y
                else begin
                  transplant tx h y x;
                  set_right tx y (right tx z);
                  set_parent tx (right tx y) y
                end;
                transplant tx h z y;
                set_left tx y (left tx z);
                set_parent tx (left tx y) y;
                set_color tx y (color tx z);
                x
              end
            in
            if Int64.equal !y_original_color black then delete_fixup tx h x;
            P.dealloc tx z;
            1L)
    = 1L

  (** Membership test (read-only transaction). *)
  let contains p ~tid ~slot k =
    P.read_only p ~tid (fun tx ->
        let h = handles tx slot in
        let nil_n = nil tx h in
        let rec find x =
          if x = nil_n then 0L
          else
            let c = Int64.compare k (key tx x) in
            if c = 0 then 1L else find (if c < 0 then left tx x else right tx x)
        in
        find (root tx h))
    = 1L

  let cardinal p ~tid ~slot =
    Int64.to_int
      (P.read_only p ~tid (fun tx ->
           let h = handles tx slot in
           let nil_n = nil tx h in
           let rec count x =
             if x = nil_n then 0L
             else Int64.add 1L (Int64.add (count (left tx x)) (count (right tx x)))
           in
           count (root tx h)))

  (** In-order elements. *)
  let elements p ~tid ~slot =
    let r = ref [] in
    ignore
      (P.read_only p ~tid (fun tx ->
           let h = handles tx slot in
           let nil_n = nil tx h in
           let rec go acc x =
             if x = nil_n then acc
             else go (key tx x :: go acc (right tx x)) (left tx x)
           in
           r := go [] (root tx h);
           0L));
    !r

  (** Structural invariant check (test oracle): BST order, no red-red
      parent/child, equal black heights.  Returns the black height. *)
  let check_invariants p ~tid ~slot =
    let ok = ref true in
    ignore
      (P.read_only p ~tid (fun tx ->
           let h = handles tx slot in
           let nil_n = nil tx h in
           let rec go x lo hi =
             if x = nil_n then 1
             else begin
               let k = key tx x in
               (match lo with
               | Some l when Int64.compare k l <= 0 -> ok := false
               | _ -> ());
               (match hi with
               | Some u when Int64.compare k u >= 0 -> ok := false
               | _ -> ());
               if Int64.equal (color tx x) red then begin
                 if Int64.equal (color tx (left tx x)) red then ok := false;
                 if Int64.equal (color tx (right tx x)) red then ok := false
               end;
               let bl = go (left tx x) lo (Some k) in
               let br = go (right tx x) (Some k) hi in
               if bl <> br then ok := false;
               bl + (if Int64.equal (color tx x) black then 1 else 0)
             end
           in
           let r = root tx h in
           if r <> nil_n && Int64.equal (color tx r) red then ok := false;
           ignore (go r None None);
           0L));
    !ok
end
