(** Resizable separate-chaining hash set over any PTM (the paper's hash
    workload, Figure 6 bottom; the base of RedoDB's map).  Doubles its
    table past load factor 2 in a single large transaction — the
    combining/flush-aggregation stress case the paper highlights. *)

module Make (P : Ptm.Ptm_intf.S) : sig
  val init : ?initial_buckets:int -> P.t -> tid:int -> slot:int -> unit
  val add : P.t -> tid:int -> slot:int -> int64 -> bool
  val remove : P.t -> tid:int -> slot:int -> int64 -> bool
  val contains : P.t -> tid:int -> slot:int -> int64 -> bool

  (** O(1): reads the persistent size field. *)
  val cardinal : P.t -> tid:int -> slot:int -> int

  (** Fold over all elements in one read-only transaction (consistent
      snapshot); order unspecified. *)
  val fold : P.t -> tid:int -> slot:int -> init:'a -> ('a -> int64 -> 'a) -> 'a
end
