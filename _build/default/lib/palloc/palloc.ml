type mem = {
  get : int -> int64;
  set : int -> int64 -> unit;
}

exception Out_of_memory

let root_slots = 63

let root_addr i =
  if i < 1 || i > root_slots then invalid_arg "Palloc.root_addr";
  i

let n_classes = 24 (* block sizes 2^0 .. 2^23 words *)
let meta_base = 64
let meta_bump = meta_base
let meta_heap_end = meta_base + 1
let meta_live = meta_base + 2
let meta_freelist c = meta_base + 3 + c

let heap_base =
  let after_meta = meta_base + 3 + n_classes in
  (after_meta + 7) / 8 * 8

(* The block header (one word) stores the size class, plus a FREE bit while
   the block sits on a free list (catching double frees); the next-free link
   then lives in the block's second word (every block has >= 2 words). *)

let free_bit = 1 lsl 40

let class_of_block_words b =
  let rec go c size = if size >= b then c else go (c + 1) (size * 2) in
  go 0 1

let block_words n =
  if n < 1 then invalid_arg "Palloc.block_words";
  1 lsl (class_of_block_words (n + 1))

let format mem ~words =
  if words <= heap_base then invalid_arg "Palloc.format: region too small";
  mem.set meta_bump (Int64.of_int heap_base);
  mem.set meta_heap_end (Int64.of_int words);
  mem.set meta_live 0L;
  for c = 0 to n_classes - 1 do
    mem.set (meta_freelist c) 0L
  done

let alloc mem n =
  if n < 1 then invalid_arg "Palloc.alloc";
  let c = class_of_block_words (n + 1) in
  if c >= n_classes then raise Out_of_memory;
  let bs = 1 lsl c in
  let live = Int64.to_int (mem.get meta_live) in
  let head = Int64.to_int (mem.get (meta_freelist c)) in
  let block =
    if head <> 0 then begin
      mem.set (meta_freelist c) (mem.get (head + 1));
      head
    end
    else begin
      let bump = Int64.to_int (mem.get meta_bump) in
      let heap_end = Int64.to_int (mem.get meta_heap_end) in
      if bump + bs > heap_end then raise Out_of_memory;
      mem.set meta_bump (Int64.of_int (bump + bs));
      bump
    end
  in
  mem.set block (Int64.of_int c);
  mem.set meta_live (Int64.of_int (live + bs));
  block + 1

let dealloc mem addr =
  let block = addr - 1 in
  if block < heap_base then invalid_arg "Palloc.dealloc: bad address";
  let c = Int64.to_int (mem.get block) in
  if c < 0 || c >= n_classes then
    invalid_arg "Palloc.dealloc: corrupt or double-freed block";
  mem.set block (Int64.of_int (c lor free_bit));
  mem.set (block + 1) (mem.get (meta_freelist c));
  mem.set (meta_freelist c) (Int64.of_int block);
  let live = Int64.to_int (mem.get meta_live) in
  mem.set meta_live (Int64.of_int (live - (1 lsl c)))

let live_words mem = Int64.to_int (mem.get meta_live)
let used_words mem = Int64.to_int (mem.get meta_bump) - heap_base
