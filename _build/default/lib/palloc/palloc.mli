(** Persistent memory allocator.

    A sequential segregated-free-list allocator whose metadata lives {e
    inside} the transactional region and is accessed through the same
    [get]/[set] callbacks as user data.  Running it under a PTM transaction
    therefore makes every allocator mutation logged, flushed and replicated
    exactly like user stores — this is the paper's recipe for failure-
    resilient, wait-free (de)allocation with null recovery.

    Block sizes are rounded up to powers of two (one extra header word per
    block), which reproduces the space overhead the paper reports for
    RedoDB's NVM usage (Figure 8).

    Logical region layout (word addresses):
    - word [0]: reserved; address 0 is the NULL pointer;
    - words [1 .. 63]: persistent root slots;
    - words [64 ..]: allocator metadata (bump pointer, live-word counter,
      per-class free-list heads);
    - first line-aligned word after the metadata: start of the heap. *)

(** Word accessors supplied by the enclosing transaction. *)
type mem = {
  get : int -> int64;
  set : int -> int64 -> unit;
}

exception Out_of_memory

(** Number of persistent root slots (addresses [1 .. root_slots]). *)
val root_slots : int

val root_addr : int -> int

(** First heap word; also the lowest address [alloc] can ever return - 1. *)
val heap_base : int

(** [format mem ~words] initialises allocator metadata for a region of
    [words] logical words.  Must run (inside a transaction) exactly once, on
    a fresh region. *)
val format : mem -> words:int -> unit

(** [alloc mem n] returns the address of [n] fresh user words (n >= 1).
    The block is {e not} zeroed.
    @raise Out_of_memory when the heap is exhausted. *)
val alloc : mem -> int -> int

(** [dealloc mem addr] frees a block previously returned by [alloc]. *)
val dealloc : mem -> int -> unit

(** Size in words actually reserved for a request of [n] user words
    (power-of-two block including its header). *)
val block_words : int -> int

(** Words currently allocated to live blocks (headers included), as recorded
    in persistent metadata. *)
val live_words : mem -> int

(** High-water mark: words ever carved out of the heap. *)
val used_words : mem -> int
