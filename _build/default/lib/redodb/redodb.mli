(** RedoDB (§6): the paper's wait-free in-memory key-value store — a
    resizable hash map annotated with RedoOpt-PTM transactional semantics,
    offering the LevelDB/RocksDB API surface with durable-linearizable
    (serializable) transactions and null recovery. *)

include Db_intf.S

(** {1 Iteration (the paper's "extended with iterator capabilities")} *)

(** A cursor over a consistent snapshot of the database, ordered by key. *)
type cursor

(** [seek t ~tid prefix] positions a cursor at the first key >= [prefix]
    in a consistent snapshot taken at call time. *)
val seek : t -> tid:int -> string -> cursor

(** Current entry, if the cursor is valid. *)
val entry : cursor -> (string * string) option

(** Advance; returns false once exhausted. *)
val next : cursor -> bool
