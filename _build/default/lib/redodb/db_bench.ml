(** db_bench workloads (RocksDB's benchmark suite, as used in §6 Figures
    7–9): fillrandom, readrandom, readwhilewriting, overwrite — plus the
    memory-usage and recovery measurements of Figure 8.

    Keys are 16 bytes and values 100 bytes, as in the paper. *)

type result = {
  label : string;
  ops : int;
  seconds : float;
  ops_per_sec : float;
  stats : Pmem.Stats.snapshot; (* delta over the run *)
}

let key_size = 16
let value_size = 100

let key_of i = Printf.sprintf "%0*d" key_size i

let value_of seed =
  String.init value_size (fun i -> Char.chr (((seed * 131) + (i * 7)) mod 26 + 65))

module Make (D : Db_intf.S) = struct
  let timed label db ops f =
    let s0 = D.stats db in
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    let s1 = D.stats db in
    {
      label;
      ops;
      seconds = dt;
      ops_per_sec = (if dt > 0. then float_of_int ops /. dt else 0.);
      stats = Pmem.Stats.diff s1 s0;
    }

  let spawn_workers threads f =
    let ds = List.init threads (fun w -> Domain.spawn (fun () -> f w)) in
    List.iter Domain.join ds

  (** Load the database with [keys] distinct keys (sequential tids). *)
  let fill_sequential db ~keys =
    for i = 0 to keys - 1 do
      D.put db ~tid:0 ~key:(key_of i) ~value:(value_of i)
    done

  (** fillrandom: insert [ops] random keys from [keyspace] across
      [threads] threads. *)
  let fillrandom db ~threads ~ops ~keyspace =
    timed "fillrandom" db ops (fun () ->
        spawn_workers threads (fun w ->
            let st = Random.State.make [| 0xF17; w |] in
            for _ = 1 to ops / threads do
              let i = Random.State.int st keyspace in
              D.put db ~tid:w ~key:(key_of i) ~value:(value_of i)
            done))

  (** readrandom: random point lookups. *)
  let readrandom db ~threads ~ops ~keyspace =
    let hits = Atomic.make 0 in
    let r =
      timed "readrandom" db ops (fun () ->
          spawn_workers threads (fun w ->
              let st = Random.State.make [| 0x4EAD; w |] in
              for _ = 1 to ops / threads do
                let i = Random.State.int st keyspace in
                if D.get db ~tid:w (key_of i) <> None then Atomic.incr hits
              done))
    in
    (r, Atomic.get hits)

  (** readwhilewriting: [threads] readers while one extra thread
      continuously overwrites random keys. *)
  let readwhilewriting db ~threads ~ops ~keyspace =
    let stop = Atomic.make false in
    let writes = Atomic.make 0 in
    let writer_tid = threads in
    let writer =
      Domain.spawn (fun () ->
          let st = Random.State.make [| 0x327173 |] in
          while not (Atomic.get stop) do
            let i = Random.State.int st keyspace in
            D.put db ~tid:writer_tid ~key:(key_of i) ~value:(value_of (i + 1));
            Atomic.incr writes
          done)
    in
    let r =
      timed "readwhilewriting" db ops (fun () ->
          spawn_workers threads (fun w ->
              let st = Random.State.make [| 0x4EAD; w + 17 |] in
              for _ = 1 to ops / threads do
                ignore (D.get db ~tid:w (key_of (Random.State.int st keyspace)))
              done))
    in
    Atomic.set stop true;
    Domain.join writer;
    (r, Atomic.get writes)

  (** overwrite: replace the value of random existing keys. *)
  let overwrite db ~threads ~ops ~keyspace =
    timed "overwrite" db ops (fun () ->
        spawn_workers threads (fun w ->
            let st = Random.State.make [| 0x0E4; w |] in
            for _ = 1 to ops / threads do
              let i = Random.State.int st keyspace in
              D.put db ~tid:w ~key:(key_of i) ~value:(value_of (i + 99))
            done))

  (** fillseq: insert [keys] sequential keys (single-threaded, as in
      db_bench's fillseq). *)
  let fillseq db ~keys =
    timed "fillseq" db keys (fun () -> fill_sequential db ~keys)

  (** deleterandom: delete random keys from the keyspace. *)
  let deleterandom db ~threads ~ops ~keyspace =
    let deleted = Atomic.make 0 in
    let r =
      timed "deleterandom" db ops (fun () ->
          spawn_workers threads (fun w ->
              let st = Random.State.make [| 0xDE1; w |] in
              for _ = 1 to ops / threads do
                if D.delete db ~tid:w (key_of (Random.State.int st keyspace))
                then Atomic.incr deleted
              done))
    in
    (r, Atomic.get deleted)

  (** readmissing: random lookups of keys guaranteed absent. *)
  let readmissing db ~threads ~ops ~keyspace =
    timed "readmissing" db ops (fun () ->
        spawn_workers threads (fun w ->
            let st = Random.State.make [| 0x415; w |] in
            for _ = 1 to ops / threads do
              ignore
                (D.get db ~tid:w
                   (key_of (keyspace + Random.State.int st keyspace)))
            done))

  (** Figure 8: memory usage after a fillrandom load, and recovery time. *)
  let memory_and_recovery db ~keys =
    fill_sequential db ~keys;
    let nvm, volatile = D.memory_usage db in
    let recovery_s = D.crash_and_recover db in
    (nvm, volatile, recovery_s)
end
