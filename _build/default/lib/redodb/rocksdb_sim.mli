(** RocksDB-style baseline for Figures 7–9: synchronous WAL (with an
    ext4-journal flush model) + volatile memtable + sorted-table
    compaction, over the same simulated PM device as RedoDB.  Writers
    serialize on the WAL lock; readers take a shared lock. *)

include Db_intf.S
