lib/redodb/db_bench.ml: Atomic Char Db_intf Domain List Pmem Printf Random String Unix
