lib/redodb/db_intf.ml: Pmem
