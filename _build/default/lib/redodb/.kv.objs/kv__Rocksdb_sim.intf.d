lib/redodb/rocksdb_sim.mli: Db_intf
