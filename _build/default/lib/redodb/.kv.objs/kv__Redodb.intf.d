lib/redodb/redodb.mli: Db_intf
