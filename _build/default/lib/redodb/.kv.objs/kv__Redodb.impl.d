lib/redodb/redodb.ml: Array Bytes Char Hashtbl Int64 List Palloc Pmem Ptm String Unix
