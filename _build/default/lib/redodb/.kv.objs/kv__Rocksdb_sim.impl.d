lib/redodb/rocksdb_sim.ml: Array Bytes Char Fun Hashtbl Int64 List Mutex Pmem String Sync_prims Unix
