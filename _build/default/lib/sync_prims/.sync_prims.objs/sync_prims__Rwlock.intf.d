lib/sync_prims/rwlock.mli:
