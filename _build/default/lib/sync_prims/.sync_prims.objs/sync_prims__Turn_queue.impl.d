lib/sync_prims/turn_queue.ml: Array Atomic
