lib/sync_prims/turn_queue.mli:
