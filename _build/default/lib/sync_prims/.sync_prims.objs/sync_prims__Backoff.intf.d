lib/sync_prims/backoff.mli:
