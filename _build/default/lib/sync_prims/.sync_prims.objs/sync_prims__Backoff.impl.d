lib/sync_prims/backoff.ml: Domain Unix
