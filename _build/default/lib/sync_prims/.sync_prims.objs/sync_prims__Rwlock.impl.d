lib/sync_prims/rwlock.ml: Atomic Backoff
