(** The paper's [SeqTidIdx] 64-bit control word: a monotonically increasing
    sequence number concatenated with the id of the thread that produced the
    transition and the index of one of that thread's pre-allocated State (or
    Combined) instances.  Packed in an OCaml [int] (47+8+8 bits used). *)

type t = int

let tid_bits = 8
let idx_bits = 8
let max_tid = (1 lsl tid_bits) - 1
let max_idx = (1 lsl idx_bits) - 1

let pack ~seq ~tid ~idx =
  assert (tid >= 0 && tid <= max_tid);
  assert (idx >= 0 && idx <= max_idx);
  assert (seq >= 0);
  (seq lsl (tid_bits + idx_bits)) lor (tid lsl idx_bits) lor idx

let seq t = t lsr (tid_bits + idx_bits)
let tid t = (t lsr idx_bits) land max_tid
let idx t = t land max_idx

let to_int64 t = Int64.of_int t
let of_int64 v = Int64.to_int v

let pp ppf t = Format.fprintf ppf "{seq=%d;tid=%d;idx=%d}" (seq t) (tid t) (idx t)
