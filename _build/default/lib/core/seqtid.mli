(** The paper's [SeqTidIdx] control word: a monotonically increasing
    sequence number packed with the id of the thread that produced a
    transition and the index of one of its pre-allocated instances.
    Packed values with larger sequence numbers compare greater. *)

type t = int

val max_tid : int
val max_idx : int

val pack : seq:int -> tid:int -> idx:int -> t
val seq : t -> int
val tid : t -> int
val idx : t -> int

val to_int64 : t -> int64
val of_int64 : int64 -> t
val pp : Format.formatter -> t -> unit
