(** OneFile-style wait-free PTM baseline (redo log, serialized writers with
    combining, optimistic seq-validated reads).  See the implementation
    header for the cost profile reproduced from the paper. *)
include Ptm_intf.S
