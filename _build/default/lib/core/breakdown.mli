(** Per-thread wall-clock accounting of where update transactions spend
    time — the categories of the paper's Table 1: applying redo logs,
    flushing, copying replicas, running the user lambda, and sleeping
    (backoff / waiting for helpers).  Disabled by default; when disabled,
    [timed] is a pass-through. *)

type section = Apply | Flush | Copy | Lambda | Sleep

type t

val create : num_threads:int -> t
val enable : t -> bool -> unit
val reset : t -> unit

(** [timed t ~tid s f] runs [f ()], accounting its duration to [s] when
    profiling is enabled. *)
val timed : t -> tid:int -> section -> (unit -> 'a) -> 'a

(** Account an externally measured duration to a section. *)
val add : t -> tid:int -> section -> float -> unit

(** Record one completed update transaction of the given duration. *)
val add_total : t -> tid:int -> float -> unit

type snapshot = {
  update_txs : int;
  total_s : float;
  sections : (string * float) list;
}

val snapshot : t -> snapshot

(** Average microseconds per update transaction. *)
val avg_us : snapshot -> float

(** Fraction of transaction time spent in the named section
    ("apply" | "flush" | "copy" | "lambda" | "sleep"). *)
val fraction : snapshot -> string -> float
