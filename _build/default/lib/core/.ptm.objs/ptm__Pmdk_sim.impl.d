lib/core/pmdk_sim.ml: Breakdown Fun Hashtbl Int64 Mutex Palloc Pmem Unix
