lib/core/pmdk_sim.mli: Ptm_intf
