lib/core/wset.mli:
