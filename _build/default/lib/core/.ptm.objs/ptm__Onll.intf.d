lib/core/onll.mli: Breakdown Pmem
