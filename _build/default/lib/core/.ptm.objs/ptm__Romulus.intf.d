lib/core/romulus.mli: Ptm_intf
