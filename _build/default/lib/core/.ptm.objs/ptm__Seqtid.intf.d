lib/core/seqtid.mli: Format
