lib/core/onll.ml: Array Atomic Breakdown Bytes Int64 Mutex Palloc Pmem Sync_prims
