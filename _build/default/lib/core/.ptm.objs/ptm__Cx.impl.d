lib/core/cx.ml: Array Atomic Sync_prims
