lib/core/seqtid.ml: Format Int64
