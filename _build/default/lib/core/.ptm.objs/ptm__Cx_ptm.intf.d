lib/core/cx_ptm.mli: Ptm_intf
