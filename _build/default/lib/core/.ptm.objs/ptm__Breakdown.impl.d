lib/core/breakdown.ml: Array List Unix
