lib/core/cx_ptm.ml: Array Atomic Breakdown Hashtbl Palloc Pmem Seqtid Sync_prims Unix
