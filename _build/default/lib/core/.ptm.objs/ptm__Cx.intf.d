lib/core/cx.mli:
