lib/core/ptm_intf.ml: Breakdown Pmem
