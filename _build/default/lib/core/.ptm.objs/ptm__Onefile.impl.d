lib/core/onefile.ml: Array Atomic Breakdown Fun Hashtbl Int64 List Palloc Pmem Sync_prims Unix Wset
