lib/core/redo_ptm.mli: Ptm_intf
