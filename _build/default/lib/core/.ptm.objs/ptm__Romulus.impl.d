lib/core/romulus.ml: Array Atomic Breakdown Hashtbl Int64 Mutex Palloc Pmem Sync_prims Unix Wset
