lib/core/breakdown.mli:
