lib/core/wset.ml: Array
