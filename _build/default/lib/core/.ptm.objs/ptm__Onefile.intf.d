lib/core/onefile.mli: Ptm_intf
