(** CX-PUC and CX-PTM: persistent variants of the CX wait-free universal
    construction (paper §4) — 2N replicas, wait-free turn queue of
    mutations, strong try reader-writer locks, and a PM-resident [curComb]
    word whose durable value never regresses.

    The two modes differ only in store interposition: CX-PUC flushes the
    whole region per transition (no annotation of the sequential code);
    CX-PTM tracks and flushes only the mutated cache lines. *)

module type MODE = sig
  val name : string
  val interpose : bool
end

module Make (M : MODE) : Ptm_intf.S

(** The persistent universal construction: no load/store annotation,
    whole-region flush per [curComb] transition. *)
module Puc : Ptm_intf.S

(** The PTM: interposed stores, per-line flushing. *)
module Ptm : Ptm_intf.S
