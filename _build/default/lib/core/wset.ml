(** Physical write-set (redo + undo log) of a transaction.

    Entries record, per mutated word, the value before the transaction
    ([oldv], for the undo log) and the value to install ([newv], the redo
    log).  Two modes:

    - [aggregate = false]: every store appends an entry, as in base
      Redo-PTM's [WriteSetNode] chain; the undo log replays entries in
      reverse order so repeated stores to one address revert correctly.
    - [aggregate = true]: RedoOpt-PTM's {e store aggregation} — a hash index
      coalesces repeated stores to the same address into a single entry that
      keeps the first [oldv] and the last [newv].

    The hash index uses epoch-stamped open addressing so that [reset] is
    O(1), which is the "efficient reset and re-usage of the State instance"
    the paper calls out. *)

type entry = {
  mutable addr : int;
  mutable oldv : int64;
  mutable newv : int64;
}

type t = {
  aggregate : bool;
  mutable entries : entry array;
  mutable count : int;
  (* open-addressing index: addr -> position in [entries] *)
  mutable keys : int array; (* addr + 1; 0 = empty *)
  mutable slots : int array;
  mutable stamps : int array;
  mutable mask : int;
  mutable epoch : int;
}

let initial_capacity = 64

let create ~aggregate =
  {
    aggregate;
    entries = Array.init initial_capacity (fun _ -> { addr = 0; oldv = 0L; newv = 0L });
    count = 0;
    keys = Array.make (2 * initial_capacity) 0;
    slots = Array.make (2 * initial_capacity) 0;
    stamps = Array.make (2 * initial_capacity) 0;
    mask = (2 * initial_capacity) - 1;
    epoch = 1;
  }

let length t = t.count
let is_empty t = t.count = 0

let reset t =
  t.count <- 0;
  t.epoch <- t.epoch + 1

let[@inline] hash addr = (addr * 0x9E3779B1) land max_int

let rec index_find t addr =
  let m = t.mask in
  let rec probe i =
    if t.stamps.(i) <> t.epoch || t.keys.(i) = 0 then (-1, i)
    else if t.keys.(i) = addr + 1 then (t.slots.(i), i)
    else probe ((i + 1) land m)
  in
  probe (hash addr land m)

and grow_index t =
  let cap = 2 * (t.mask + 1) in
  t.keys <- Array.make cap 0;
  t.slots <- Array.make cap 0;
  t.stamps <- Array.make cap 0;
  t.mask <- cap - 1;
  for j = 0 to t.count - 1 do
    let e = t.entries.(j) in
    let _, i = index_find t e.addr in
    t.keys.(i) <- e.addr + 1;
    t.slots.(i) <- j;
    t.stamps.(i) <- t.epoch
  done

let index_put t addr pos =
  if 2 * (t.count + 1) > t.mask then grow_index t;
  let _, i = index_find t addr in
  t.keys.(i) <- addr + 1;
  t.slots.(i) <- pos;
  t.stamps.(i) <- t.epoch

let append t addr ~oldv ~newv =
  if t.count = Array.length t.entries then begin
    let bigger =
      Array.init (2 * t.count) (fun i ->
          if i < t.count then t.entries.(i)
          else { addr = 0; oldv = 0L; newv = 0L })
    in
    t.entries <- bigger
  end;
  let e = t.entries.(t.count) in
  e.addr <- addr;
  e.oldv <- oldv;
  e.newv <- newv;
  index_put t addr t.count;
  t.count <- t.count + 1

(** [record t addr ~oldv ~newv] logs a store of [newv] to [addr] whose
    pre-transaction (or pre-store) value was [oldv]. *)
let record t addr ~oldv ~newv =
  if t.aggregate then begin
    let pos, _ = index_find t addr in
    if pos >= 0 then t.entries.(pos).newv <- newv
    else append t addr ~oldv ~newv
  end
  else append t addr ~oldv ~newv

(** Last value this write-set holds for [addr], for read-your-writes. *)
let find t addr =
  let pos, _ = index_find t addr in
  if pos >= 0 then begin
    (* In append mode the index points at the latest entry for [addr]. *)
    Some t.entries.(pos).newv
  end
  else None

(** Redo: apply entries in insertion order. *)
let iter_redo t f =
  for i = 0 to t.count - 1 do
    let e = t.entries.(i) in
    f e.addr e.newv
  done

(** Undo: revert entries in reverse insertion order. *)
let iter_undo t f =
  for i = t.count - 1 downto 0 do
    let e = t.entries.(i) in
    f e.addr e.oldv
  done

let iter_entries t f =
  for i = 0 to t.count - 1 do
    let e = t.entries.(i) in
    f e.addr ~oldv:e.oldv ~newv:e.newv
  done
