(** Physical write-set (redo + undo log) of a transaction.

    Entries record, per mutated word, the value before the transaction
    ([oldv], the undo log) and the value to install ([newv], the redo log).
    In [aggregate] mode (RedoOpt's {e store aggregation}) a hash index
    coalesces repeated stores to one address, keeping the first [oldv] and
    the last [newv]; otherwise every store appends an entry and the undo
    log replays in reverse order.  [reset] is O(1) (epoch-stamped index),
    which is what makes the paper's State reuse cheap. *)

type t

val create : aggregate:bool -> t
val length : t -> int
val is_empty : t -> bool

(** O(1); the structure is immediately reusable. *)
val reset : t -> unit

(** [record t addr ~oldv ~newv] logs a store; [oldv] is the value being
    overwritten by {e this} store. *)
val record : t -> int -> oldv:int64 -> newv:int64 -> unit

(** Latest value this write-set holds for [addr] (read-your-writes). *)
val find : t -> int -> int64 option

(** Redo: entries in insertion order. *)
val iter_redo : t -> (int -> int64 -> unit) -> unit

(** Undo: entries in reverse insertion order, with their old values. *)
val iter_undo : t -> (int -> int64 -> unit) -> unit

val iter_entries : t -> (int -> oldv:int64 -> newv:int64 -> unit) -> unit
