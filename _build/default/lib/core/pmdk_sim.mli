(** Blocking undo-log PTM modelling Intel PMDK's libpmemobj: persistent
    per-range undo log ("2+2R fences"), in-place stores flushed at commit,
    one global transaction lock, single replica. *)
include Ptm_intf.S
