(** RomulusLR baseline: two PM replicas with a persistent state word, four
    fences per update transaction, blocking writers and wait-free
    (left-right) read-only transactions. *)
include Ptm_intf.S
