(** Per-thread wall-clock accounting of where an update transaction spends
    its time, reproducing the categories of the paper's Table 1:
    applying redo logs, flushing, copying replicas, running the user lambda,
    and sleeping (backoff / waiting for helpers). *)

type section = Apply | Flush | Copy | Lambda | Sleep

let n_sections = 5

let index = function
  | Apply -> 0
  | Flush -> 1
  | Copy -> 2
  | Lambda -> 3
  | Sleep -> 4

let section_name = function
  | Apply -> "apply"
  | Flush -> "flush"
  | Copy -> "copy"
  | Lambda -> "lambda"
  | Sleep -> "sleep"

type t = {
  mutable enabled : bool;
  acc : float array array; (* tid -> section -> seconds *)
  total : float array; (* tid -> seconds inside update transactions *)
  count : int array; (* tid -> update transactions *)
}

let create ~num_threads =
  {
    enabled = false;
    acc = Array.init num_threads (fun _ -> Array.make n_sections 0.);
    total = Array.make num_threads 0.;
    count = Array.make num_threads 0;
  }

let enable t b = t.enabled <- b

let reset t =
  Array.iter (fun a -> Array.fill a 0 n_sections 0.) t.acc;
  Array.fill t.total 0 (Array.length t.total) 0.;
  Array.fill t.count 0 (Array.length t.count) 0

let now = Unix.gettimeofday

(** [timed t ~tid s f] runs [f ()] accounting its duration to section [s]
    when profiling is enabled. *)
let timed t ~tid s f =
  if not t.enabled then f ()
  else begin
    let t0 = now () in
    let r = f () in
    let a = t.acc.(tid) in
    let i = index s in
    a.(i) <- a.(i) +. (now () -. t0);
    r
  end

(** Account an externally measured duration. *)
let add t ~tid s dt =
  if t.enabled then begin
    let a = t.acc.(tid) in
    let i = index s in
    a.(i) <- a.(i) +. dt
  end

let add_total t ~tid dt =
  if t.enabled then begin
    t.total.(tid) <- t.total.(tid) +. dt;
    t.count.(tid) <- t.count.(tid) + 1
  end

type snapshot = {
  update_txs : int;
  total_s : float;
  sections : (string * float) list; (* seconds per section *)
}

let snapshot t =
  let sections =
    List.map
      (fun s ->
        let i = index (s : section) in
        ( section_name s,
          Array.fold_left (fun acc a -> acc +. a.(i)) 0. t.acc ))
      [ Apply; Flush; Copy; Lambda; Sleep ]
  in
  {
    update_txs = Array.fold_left ( + ) 0 t.count;
    total_s = Array.fold_left ( +. ) 0. t.total;
    sections;
  }

(** Average microseconds per update transaction. *)
let avg_us snap =
  if snap.update_txs = 0 then 0.
  else snap.total_s *. 1e6 /. float_of_int snap.update_txs

(** Fraction of total transaction time spent in a given section. *)
let fraction snap name =
  if snap.total_s <= 0. then 0.
  else
    match List.assoc_opt name snap.sections with
    | Some s -> s /. snap.total_s
    | None -> 0.
