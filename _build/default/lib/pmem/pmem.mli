(** Simulated byte-addressable non-volatile main memory (NVMM).

    The paper's testbed is Intel Optane DC persistent memory driven with the
    [CLWB] (persistence write-back, "pwb") and [SFENCE] (persistence fence,
    "pfence"/"psync") instructions.  This module replaces that hardware with a
    deterministic model that preserves exactly the properties the paper's
    durable-linearizability arguments rest on:

    - memory is an array of 64-bit words grouped in 64-byte cache lines;
    - a store only modifies the volatile (cache) image;
    - [pwb] stages the containing cache line for write-back;
    - [pfence]/[psync] makes every line staged by the calling thread durable;
    - a crash discards the volatile image: only the durable image survives;
    - optionally, a crash may first "evict" a random subset of dirty lines to
      the durable image, modelling the fact that real caches may write back a
      dirty line at any time, even without an explicit flush.

    All flush instructions are counted per-thread, which is how we reproduce
    the paper's pwb-count measurements (Figure 5 right, Figure 9 right).

    Thread-safety contract: distinct threads may operate on distinct words
    concurrently; concurrent mutation of the same word must be prevented by
    the caller (the PTMs guarantee this with per-replica exclusive locks).
    Word reads/writes use aligned 64-bit accesses and do not tear. *)

type t

(** Number of 64-bit words per simulated cache line (64 bytes). *)
val words_per_line : int

(** [create ~max_threads ~words ()] allocates a region of [words] 64-bit
    words (rounded up to a cache-line multiple) usable by thread ids
    [0 .. max_threads - 1]. The region starts zeroed, and zeroed durable. *)
val create : max_threads:int -> words:int -> unit -> t

(** Total number of words in the region. *)
val size_words : t -> int

(** {1 Volatile (cached) accesses} *)

val get_word : t -> int -> int64
val set_word : t -> tid:int -> int -> int64 -> unit

(** [blit_words t ~tid ~src ~dst len] copies [len] words inside the volatile
    image (used for replica copies).  Destination lines become dirty. *)
val blit_words : t -> tid:int -> src:int -> dst:int -> int -> unit

(** [cas_word t ~tid addr ~expected ~desired] atomically compares-and-swaps a
    PM-resident word (the paper's persistency model allows atomic 64-bit
    operations on PM, e.g. CX's [curComb]).  Because the word itself is only
    ever updated by winning CAS operations, later flushes can never regress
    it to an older value. *)
val cas_word : t -> tid:int -> int -> expected:int64 -> desired:int64 -> bool

(** {1 Persistence instructions} *)

(** [pwb t ~tid addr] stages the cache line containing word [addr] for
    write-back by thread [tid].  The line's contents become durable at that
    thread's next [pfence]/[psync] (with the contents as of fence time, which
    is within the allowed behaviours of [CLWB; SFENCE]). *)
val pwb : t -> tid:int -> int -> unit

(** Flush an inclusive word range: one [pwb] per distinct cache line. *)
val pwb_range : t -> tid:int -> int -> int -> unit

(** Persistence fence: make all lines staged by [tid] durable. *)
val pfence : t -> tid:int -> unit

(** [set_default_flush_cost iters] sets a process-wide device model for
    regions created afterwards: every cache line written back at a fence
    busy-waits [iters] [cpu_relax] iterations, approximating the per-line
    CLWB+drain cost of Optane DC PMEM ([iters] ~ 100 is a few hundred ns).
    Defaults to 0 (flushes cost only the copy), which unit tests use;
    the benchmark harness enables it so that flush counts translate into
    time the way they do on the paper's hardware. *)
val set_default_flush_cost : int -> unit

(** Per-region override of the flush cost model. *)
val set_flush_cost : t -> int -> unit

(** Persistence sync: same durability effect as [pfence]; counted apart
    because the paper distinguishes the two (one pfence + one psync per
    transaction). *)
val psync : t -> tid:int -> unit

(** [ntstore_word t ~tid addr v] non-temporal store: writes the word and
    stages its line without a separate [pwb] (models [movnt]). Durable at the
    next fence. *)
val ntstore_word : t -> tid:int -> int -> int64 -> unit

(** [ntcopy_words t ~tid ~src ~dst len] replica copy using non-temporal
    stores: volatile copy + staging of every destination line, counted as
    ntstores rather than pwbs. *)
val ntcopy_words : t -> tid:int -> src:int -> dst:int -> int -> unit

(** {1 Failures and recovery} *)

(** [crash t] simulates a full-system non-corrupting failure: the volatile
    image is replaced by the durable image; all staged lines and dirty state
    are discarded. Deterministic: unflushed lines never survive. *)
val crash : t -> unit

(** [crash_with_evictions t ~seed ~prob] first writes back each dirty line
    with probability [prob] (simulating arbitrary cache evictions before the
    failure), then behaves like [crash].  Correct algorithms must recover
    from any such outcome. *)
val crash_with_evictions : t -> seed:int -> prob:float -> unit

(** [durable_word t addr] reads the durable image directly (test oracle). *)
val durable_word : t -> int -> int64

(** {1 Statistics} *)

module Stats : sig
  type snapshot = {
    pwb : int;
    pfence : int;
    psync : int;
    ntstore : int;
    words_written : int;
    words_copied : int;
  }

  val zero : snapshot
  val add : snapshot -> snapshot -> snapshot
  val diff : snapshot -> snapshot -> snapshot

  (** Total fence instructions ([pfence + psync]). *)
  val fences : snapshot -> int

  val pp : Format.formatter -> snapshot -> unit
end

(** Aggregate counters across all threads. *)
val stats : t -> Stats.snapshot

(** Reset all counters to zero. *)
val reset_stats : t -> unit
