let words_per_line = 8 (* 64-byte cache lines of 64-bit words *)

(* Per-thread staging buffer: cache lines pwb'ed but not yet fenced. *)
type staging = {
  mutable lines : int array;
  mutable count : int;
}

(* Per-thread counters, kept apart to avoid cross-thread contention. Indices
   into the [counters] array: *)
let c_pwb = 0
let c_pfence = 1
let c_psync = 2
let c_ntstore = 3
let c_words_written = 4
let c_words_copied = 5
let n_counters = 6

type t = {
  words : int;
  nlines : int;
  data : Bytes.t; (* volatile (cache) image *)
  durable : Bytes.t; (* what survives a crash *)
  dirty : Bytes.t; (* one byte per line: written since last made durable *)
  staging : staging array; (* per tid *)
  counters : int array array; (* per tid *)
  rmw_lock : Mutex.t; (* simulation-level atomicity for [cas_word] *)
  mutable flush_cost : int; (* cpu_relax iterations per written-back line *)
}

(* Device model: approximate per-line write-back latency (see .mli). *)
let default_flush_cost = Atomic.make 0
let set_default_flush_cost n = Atomic.set default_flush_cost n
let set_flush_cost t n = t.flush_cost <- n

let size_words t = t.words

let create ~max_threads ~words () =
  if max_threads < 1 then invalid_arg "Pmem.create: max_threads < 1";
  if words < words_per_line then invalid_arg "Pmem.create: words too small";
  let words = (words + words_per_line - 1) / words_per_line * words_per_line in
  let nlines = words / words_per_line in
  {
    words;
    nlines;
    data = Bytes.make (words * 8) '\000';
    durable = Bytes.make (words * 8) '\000';
    dirty = Bytes.make nlines '\000';
    staging =
      Array.init max_threads (fun _ -> { lines = Array.make 64 0; count = 0 });
    counters = Array.init max_threads (fun _ -> Array.make n_counters 0);
    rmw_lock = Mutex.create ();
    flush_cost = Atomic.get default_flush_cost;
  }

let[@inline] check_addr t addr =
  if addr < 0 || addr >= t.words then
    invalid_arg (Printf.sprintf "Pmem: address %d out of bounds" addr)

let[@inline] line_of addr = addr / words_per_line

let[@inline] get_word t addr =
  check_addr t addr;
  Bytes.get_int64_le t.data (addr * 8)

let[@inline] mark_dirty t addr =
  Bytes.unsafe_set t.dirty (line_of addr) '\001'

let[@inline] set_word t ~tid addr v =
  check_addr t addr;
  Bytes.set_int64_le t.data (addr * 8) v;
  mark_dirty t addr;
  let c = t.counters.(tid) in
  c.(c_words_written) <- c.(c_words_written) + 1

(* Word-by-word copy using aligned 64-bit accesses so that concurrent
   readers of the destination never observe torn words (Bytes.blit could
   interleave at byte granularity). *)
let copy_words_raw src dst ~src_off ~dst_off len =
  for i = 0 to len - 1 do
    Bytes.set_int64_le dst ((dst_off + i) * 8)
      (Bytes.get_int64_le src ((src_off + i) * 8))
  done

let blit_words t ~tid ~src ~dst len =
  if len < 0 then invalid_arg "Pmem.blit_words: negative length";
  if len > 0 then begin
    check_addr t src;
    check_addr t (src + len - 1);
    check_addr t dst;
    check_addr t (dst + len - 1);
    copy_words_raw t.data t.data ~src_off:src ~dst_off:dst len;
    for line = line_of dst to line_of (dst + len - 1) do
      Bytes.unsafe_set t.dirty line '\001'
    done;
    let c = t.counters.(tid) in
    c.(c_words_copied) <- c.(c_words_copied) + len
  end

let cas_word t ~tid addr ~expected ~desired =
  check_addr t addr;
  Mutex.lock t.rmw_lock;
  let cur = Bytes.get_int64_le t.data (addr * 8) in
  let ok = Int64.equal cur expected in
  if ok then begin
    Bytes.set_int64_le t.data (addr * 8) desired;
    mark_dirty t addr;
    let c = t.counters.(tid) in
    c.(c_words_written) <- c.(c_words_written) + 1
  end;
  Mutex.unlock t.rmw_lock;
  ok

let stage_line t ~tid line =
  let s = t.staging.(tid) in
  if s.count = Array.length s.lines then begin
    let bigger = Array.make (2 * s.count) 0 in
    Array.blit s.lines 0 bigger 0 s.count;
    s.lines <- bigger
  end;
  s.lines.(s.count) <- line;
  s.count <- s.count + 1

let pwb t ~tid addr =
  check_addr t addr;
  stage_line t ~tid (line_of addr);
  let c = t.counters.(tid) in
  c.(c_pwb) <- c.(c_pwb) + 1

let pwb_range t ~tid lo hi =
  if lo > hi then invalid_arg "Pmem.pwb_range: empty range";
  check_addr t lo;
  check_addr t hi;
  let c = t.counters.(tid) in
  for line = line_of lo to line_of hi do
    stage_line t ~tid line;
    c.(c_pwb) <- c.(c_pwb) + 1
  done

(* Write a staged line back to the durable image.  The line contents are the
   ones current at fence time, which is a legal CLWB/SFENCE behaviour. *)
let writeback_line t line =
  let off = line * words_per_line in
  copy_words_raw t.data t.durable ~src_off:off ~dst_off:off words_per_line;
  Bytes.unsafe_set t.dirty line '\000';
  for _ = 1 to t.flush_cost do
    Domain.cpu_relax ()
  done

let drain t ~tid =
  let s = t.staging.(tid) in
  for i = 0 to s.count - 1 do
    writeback_line t s.lines.(i)
  done;
  s.count <- 0

let pfence t ~tid =
  drain t ~tid;
  let c = t.counters.(tid) in
  c.(c_pfence) <- c.(c_pfence) + 1

let psync t ~tid =
  drain t ~tid;
  let c = t.counters.(tid) in
  c.(c_psync) <- c.(c_psync) + 1

let ntstore_word t ~tid addr v =
  check_addr t addr;
  Bytes.set_int64_le t.data (addr * 8) v;
  mark_dirty t addr;
  stage_line t ~tid (line_of addr);
  let c = t.counters.(tid) in
  c.(c_ntstore) <- c.(c_ntstore) + 1;
  c.(c_words_written) <- c.(c_words_written) + 1

let ntcopy_words t ~tid ~src ~dst len =
  if len < 0 then invalid_arg "Pmem.ntcopy_words: negative length";
  if len > 0 then begin
    check_addr t src;
    check_addr t (src + len - 1);
    check_addr t dst;
    check_addr t (dst + len - 1);
    copy_words_raw t.data t.data ~src_off:src ~dst_off:dst len;
    let c = t.counters.(tid) in
    for line = line_of dst to line_of (dst + len - 1) do
      Bytes.unsafe_set t.dirty line '\001';
      stage_line t ~tid line;
      c.(c_ntstore) <- c.(c_ntstore) + 1
    done;
    c.(c_words_copied) <- c.(c_words_copied) + len
  end

let crash t =
  Bytes.blit t.durable 0 t.data 0 (Bytes.length t.durable);
  Bytes.fill t.dirty 0 t.nlines '\000';
  Array.iter (fun s -> s.count <- 0) t.staging

let crash_with_evictions t ~seed ~prob =
  let rng = Random.State.make [| seed |] in
  for line = 0 to t.nlines - 1 do
    if Bytes.get t.dirty line = '\001' && Random.State.float rng 1.0 < prob
    then writeback_line t line
  done;
  crash t

let durable_word t addr =
  check_addr t addr;
  Bytes.get_int64_le t.durable (addr * 8)

module Stats = struct
  type snapshot = {
    pwb : int;
    pfence : int;
    psync : int;
    ntstore : int;
    words_written : int;
    words_copied : int;
  }

  let zero =
    {
      pwb = 0;
      pfence = 0;
      psync = 0;
      ntstore = 0;
      words_written = 0;
      words_copied = 0;
    }

  let add a b =
    {
      pwb = a.pwb + b.pwb;
      pfence = a.pfence + b.pfence;
      psync = a.psync + b.psync;
      ntstore = a.ntstore + b.ntstore;
      words_written = a.words_written + b.words_written;
      words_copied = a.words_copied + b.words_copied;
    }

  let diff a b =
    {
      pwb = a.pwb - b.pwb;
      pfence = a.pfence - b.pfence;
      psync = a.psync - b.psync;
      ntstore = a.ntstore - b.ntstore;
      words_written = a.words_written - b.words_written;
      words_copied = a.words_copied - b.words_copied;
    }

  let fences s = s.pfence + s.psync

  let pp ppf s =
    Format.fprintf ppf
      "pwb=%d pfence=%d psync=%d ntstore=%d written=%d copied=%d" s.pwb
      s.pfence s.psync s.ntstore s.words_written s.words_copied
end

let stats t =
  Array.fold_left
    (fun acc c ->
      Stats.add acc
        {
          Stats.pwb = c.(c_pwb);
          pfence = c.(c_pfence);
          psync = c.(c_psync);
          ntstore = c.(c_ntstore);
          words_written = c.(c_words_written);
          words_copied = c.(c_words_copied);
        })
    Stats.zero t.counters

let reset_stats t =
  Array.iter (fun c -> Array.fill c 0 n_counters 0) t.counters
